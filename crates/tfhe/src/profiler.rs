//! Per-stage timing instrumentation for the workload-breakdown analysis.
//!
//! Figure 1 of the paper decomposes a bootstrapped gate into PBS vs
//! keyswitching vs linear operations, then PBS into blind rotation and
//! the rest, then one blind-rotation iteration into rotate, decompose,
//! FFT, vector multiply and IFFT+accumulate. [`StageTimings`] collects
//! exactly those buckets from the instrumented execution paths.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// The stages of a bootstrapped gate, at the granularity of Fig. 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PbsStage {
    /// Negacyclic rotation and subtraction (rotator unit).
    Rotate,
    /// Gadget decomposition (decomposer unit).
    Decompose,
    /// Forward FFT of digit polynomials (FFT unit).
    Fft,
    /// Pointwise multiply–accumulate in the Fourier domain (VMA unit).
    VectorMultiply,
    /// Inverse FFT and time-domain accumulation (IFFT + accumulator).
    IfftAccumulate,
    /// Modulus switching (Algorithm 1 line 3).
    ModSwitch,
    /// Sample extraction (Algorithm 1 line 13).
    SampleExtract,
    /// Keyswitching (Algorithm 2).
    KeySwitch,
    /// Linear homomorphic operations outside PBS/KS (gate offsets, adds).
    LinearOps,
}

impl PbsStage {
    /// All stages, in pipeline order.
    pub const ALL: [PbsStage; 9] = [
        PbsStage::Rotate,
        PbsStage::Decompose,
        PbsStage::Fft,
        PbsStage::VectorMultiply,
        PbsStage::IfftAccumulate,
        PbsStage::ModSwitch,
        PbsStage::SampleExtract,
        PbsStage::KeySwitch,
        PbsStage::LinearOps,
    ];

    /// Stages that belong to the blind rotation (Fig. 1's "BR iteration
    /// proportion" panel).
    pub const BLIND_ROTATION: [PbsStage; 5] = [
        PbsStage::Rotate,
        PbsStage::Decompose,
        PbsStage::Fft,
        PbsStage::VectorMultiply,
        PbsStage::IfftAccumulate,
    ];

    /// Short display label matching the paper's figure annotations.
    pub fn label(self) -> &'static str {
        match self {
            PbsStage::Rotate => "Rotate",
            PbsStage::Decompose => "Decomp.",
            PbsStage::Fft => "FFT",
            PbsStage::VectorMultiply => "Vec. mult",
            PbsStage::IfftAccumulate => "Accum.+IFFT",
            PbsStage::ModSwitch => "ModSwitch",
            PbsStage::SampleExtract => "SampleExtract",
            PbsStage::KeySwitch => "KS",
            PbsStage::LinearOps => "Other",
        }
    }

    fn index(self) -> usize {
        match self {
            PbsStage::Rotate => 0,
            PbsStage::Decompose => 1,
            PbsStage::Fft => 2,
            PbsStage::VectorMultiply => 3,
            PbsStage::IfftAccumulate => 4,
            PbsStage::ModSwitch => 5,
            PbsStage::SampleExtract => 6,
            PbsStage::KeySwitch => 7,
            PbsStage::LinearOps => 8,
        }
    }
}

/// Accumulated wall-clock time per stage.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StageTimings {
    nanos: [u128; 9],
}

impl StageTimings {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a measured duration to a stage.
    pub fn add(&mut self, stage: PbsStage, d: Duration) {
        self.nanos[stage.index()] += d.as_nanos();
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &StageTimings) {
        for (a, b) in self.nanos.iter_mut().zip(&other.nanos) {
            *a += *b;
        }
    }

    /// Total time recorded for one stage.
    pub fn total_for(&self, stage: PbsStage) -> Duration {
        nanos_to_duration(self.nanos[stage.index()])
    }

    /// Total time across all stages.
    pub fn total(&self) -> Duration {
        nanos_to_duration(self.nanos.iter().sum())
    }

    /// Fraction of total time spent in a stage (0 if nothing recorded).
    pub fn fraction(&self, stage: PbsStage) -> f64 {
        let total: u128 = self.nanos.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.nanos[stage.index()] as f64 / total as f64
    }

    /// Fraction of total time spent inside the blind rotation.
    pub fn blind_rotation_fraction(&self) -> f64 {
        PbsStage::BLIND_ROTATION.iter().map(|&s| self.fraction(s)).sum()
    }

    /// Fraction of total time spent in PBS (everything except
    /// keyswitching and linear operations).
    pub fn pbs_fraction(&self) -> f64 {
        1.0 - self.fraction(PbsStage::KeySwitch) - self.fraction(PbsStage::LinearOps)
    }
}

fn nanos_to_duration(n: u128) -> Duration {
    Duration::from_nanos(u64::try_from(n).unwrap_or(u64::MAX))
}

/// A zero-cost instrumentation point for the PBS execution paths.
///
/// The blind rotation and the external product are each implemented
/// **once**, generic over a probe; the production entry points pass
/// [`NoProbe`] (every `time` call inlines to a plain closure call, so
/// the hot loop carries no timing branches) and the profiled entry
/// points pass [`TimingProbe`], which wraps each region in an
/// [`std::time::Instant`] pair and accumulates into [`StageTimings`].
/// One implementation means the profiled numbers can never drift from
/// what the production kernel actually executes.
pub(crate) trait Probe {
    /// Runs `f`, attributing its wall time to `stage` (or not at all).
    fn time<R>(&mut self, stage: PbsStage, f: impl FnOnce() -> R) -> R;
}

/// The production probe: measures nothing, compiles to nothing.
pub(crate) struct NoProbe;

impl Probe for NoProbe {
    #[inline(always)]
    fn time<R>(&mut self, _stage: PbsStage, f: impl FnOnce() -> R) -> R {
        f()
    }
}

/// The profiling probe: accumulates per-stage wall time.
pub(crate) struct TimingProbe<'a>(pub &'a mut StageTimings);

impl Probe for TimingProbe<'_> {
    #[inline]
    fn time<R>(&mut self, stage: PbsStage, f: impl FnOnce() -> R) -> R {
        let t0 = std::time::Instant::now();
        let r = f();
        self.0.add(stage, t0.elapsed());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let mut t = StageTimings::new();
        t.add(PbsStage::Fft, Duration::from_micros(60));
        t.add(PbsStage::KeySwitch, Duration::from_micros(30));
        t.add(PbsStage::LinearOps, Duration::from_micros(10));
        let sum: f64 = PbsStage::ALL.iter().map(|&s| t.fraction(s)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((t.fraction(PbsStage::Fft) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn pbs_fraction_excludes_ks_and_linear() {
        let mut t = StageTimings::new();
        t.add(PbsStage::Fft, Duration::from_micros(65));
        t.add(PbsStage::KeySwitch, Duration::from_micros(30));
        t.add(PbsStage::LinearOps, Duration::from_micros(5));
        assert!((t.pbs_fraction() - 0.65).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = StageTimings::new();
        a.add(PbsStage::Rotate, Duration::from_nanos(100));
        let mut b = StageTimings::new();
        b.add(PbsStage::Rotate, Duration::from_nanos(50));
        b.add(PbsStage::Fft, Duration::from_nanos(25));
        a.merge(&b);
        assert_eq!(a.total_for(PbsStage::Rotate), Duration::from_nanos(150));
        assert_eq!(a.total(), Duration::from_nanos(175));
    }

    #[test]
    fn empty_timings_have_zero_fractions() {
        let t = StageTimings::new();
        assert_eq!(t.fraction(PbsStage::Fft), 0.0);
        assert_eq!(t.total(), Duration::ZERO);
    }

    #[test]
    fn labels_are_paper_annotations() {
        assert_eq!(PbsStage::IfftAccumulate.label(), "Accum.+IFFT");
        assert_eq!(PbsStage::VectorMultiply.label(), "Vec. mult");
    }

    #[test]
    fn blind_rotation_stage_set() {
        assert_eq!(PbsStage::BLIND_ROTATION.len(), 5);
        assert!(!PbsStage::BLIND_ROTATION.contains(&PbsStage::KeySwitch));
    }
}
