//! Gate bootstrapping: boolean logic with one PBS (+ keyswitch) per gate.
//!
//! Booleans are encoded as `±1/8` on the torus. A gate computes a small
//! linear combination of its input ciphertexts plus a constant offset,
//! then applies a sign-LUT PBS that maps positive phases to `+1/8` and
//! negative phases to `−1/8` (via negacyclic wrap-around), and finally
//! keyswitches back to the `n`-dimension key. This is the workload of
//! the paper's Fig. 1 breakdown and the gate-level benchmarks.

use crate::bootstrap::{decode_bool, encode_bool, Lut};
use crate::keys::{ClientKey, ServerKey};
use crate::lwe::LweCiphertext;
use crate::profiler::{PbsStage, StageTimings};
use crate::torus::encode_fraction;
use crate::TfheError;

/// An encrypted boolean (LWE ciphertext of dimension `n` with `±1/8`
/// encoding).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoolCiphertext {
    pub(crate) ct: LweCiphertext,
}

impl BoolCiphertext {
    /// A trivial (noiseless, insecure) encryption of a known boolean.
    pub fn trivial(dimension: usize, value: bool) -> Self {
        Self { ct: LweCiphertext::trivial(dimension, encode_bool(value)) }
    }

    /// Borrow of the underlying LWE ciphertext.
    #[inline]
    pub fn as_lwe(&self) -> &LweCiphertext {
        &self.ct
    }

    /// Consumes into the underlying LWE ciphertext.
    #[inline]
    pub fn into_lwe(self) -> LweCiphertext {
        self.ct
    }
}

impl ClientKey {
    /// Encrypts a boolean.
    pub fn encrypt_bool(&mut self, value: bool) -> BoolCiphertext {
        BoolCiphertext { ct: self.encrypt_torus(encode_bool(value)) }
    }

    /// Decrypts a boolean.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext dimension matches neither client key
    /// (programming error in the pipeline).
    pub fn decrypt_bool(&self, ct: &BoolCiphertext) -> bool {
        // lint:allow(panic) ciphertext was produced under this key's dimension
        let phase = self.decrypt_phase(&ct.ct).expect("boolean ciphertext dimension");
        decode_bool(phase)
    }
}

/// The linear pre-processing of a binary gate: `w1·c1 + w2·c2 + offset`.
///
/// Recipes are public so schedulers can evaluate a gate as one batched
/// runtime request (linear preamble, then the shared [`gate_sign_lut`]
/// bootstrap, then keyswitch) instead of calling [`ServerKey`] methods
/// synchronously.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GateRecipe {
    /// Weight of the first input ciphertext.
    pub w1: i64,
    /// Weight of the second input ciphertext.
    pub w2: i64,
    /// Offset numerator in eighths of the torus.
    pub offset_eighths: i64,
}

impl GateRecipe {
    /// The recipe's constant offset as a torus element.
    #[inline]
    pub fn offset(self) -> u64 {
        encode_fraction(self.offset_eighths, 3)
    }

    /// The two input weights as a slice-friendly array.
    #[inline]
    pub fn weights(self) -> [i64; 2] {
        [self.w1, self.w2]
    }

    /// Worst-case distance from this recipe's noiseless output phase to
    /// the nearest sign-LUT decision boundary, in torus units — the
    /// numerator of the recipe's noise margin.
    ///
    /// The sign LUT decides on half-torus boxes, so its boundaries sit
    /// at 0 and 1/2. Unit-weight recipes (AND, OR, NAND, NOR) place
    /// every outcome ±1/8 from a boundary; the ±2-weight recipes (XOR,
    /// XNOR) double the noise amplitude but also place their outcomes
    /// ±1/4 from a boundary, which is why all six gates share one noise
    /// budget. Computed by enumerating the four input combinations
    /// rather than hard-coded, so a new recipe is automatically scored
    /// by what its offsets actually achieve.
    pub fn decision_distance(self) -> f64 {
        let mut min_distance = f64::INFINITY;
        for (a, b) in [(-1i64, -1i64), (-1, 1), (1, -1), (1, 1)] {
            // Noiseless phase in eighths of the torus: inputs encode at
            // ±1/8.
            let eighths = self.w1 * a + self.w2 * b + self.offset_eighths;
            // Distance to the nearest multiple of 1/2 (= 4 eighths).
            let within_box = eighths.rem_euclid(4);
            let distance_eighths = within_box.min(4 - within_box);
            min_distance = min_distance.min(distance_eighths as f64 / 8.0);
        }
        min_distance
    }
}

/// The two-input boolean gates evaluable with one sign-LUT bootstrap.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinaryGate {
    /// Logical AND.
    And,
    /// Logical OR.
    Or,
    /// Logical NAND.
    Nand,
    /// Logical NOR.
    Nor,
    /// Logical XOR.
    Xor,
    /// Logical XNOR.
    Xnor,
}

impl BinaryGate {
    /// Every gate, in a fixed order (useful for exhaustive tests).
    pub const ALL: [BinaryGate; 6] = [
        BinaryGate::And,
        BinaryGate::Or,
        BinaryGate::Nand,
        BinaryGate::Nor,
        BinaryGate::Xor,
        BinaryGate::Xnor,
    ];

    /// The gate's linear pre-processing recipe.
    pub fn recipe(self) -> GateRecipe {
        match self {
            BinaryGate::And => GateRecipe { w1: 1, w2: 1, offset_eighths: -1 },
            BinaryGate::Or => GateRecipe { w1: 1, w2: 1, offset_eighths: 1 },
            BinaryGate::Nand => GateRecipe { w1: -1, w2: -1, offset_eighths: 1 },
            BinaryGate::Nor => GateRecipe { w1: -1, w2: -1, offset_eighths: -1 },
            BinaryGate::Xor => GateRecipe { w1: 2, w2: 2, offset_eighths: 2 },
            BinaryGate::Xnor => GateRecipe { w1: -2, w2: -2, offset_eighths: -2 },
        }
    }

    /// The plaintext truth table.
    pub fn eval(self, a: bool, b: bool) -> bool {
        match self {
            BinaryGate::And => a & b,
            BinaryGate::Or => a | b,
            BinaryGate::Nand => !(a & b),
            BinaryGate::Nor => !(a | b),
            BinaryGate::Xor => a ^ b,
            BinaryGate::Xnor => !(a ^ b),
        }
    }
}

impl std::fmt::Display for BinaryGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            BinaryGate::And => "and",
            BinaryGate::Or => "or",
            BinaryGate::Nand => "nand",
            BinaryGate::Nor => "nor",
            BinaryGate::Xor => "xor",
            BinaryGate::Xnor => "xnor",
        };
        f.write_str(name)
    }
}

/// The sign LUT shared by every gate bootstrap: positive phases map to
/// `+1/8`, negative phases to `−1/8` (negacyclic wrap-around).
pub fn gate_sign_lut(poly_size: usize) -> Lut {
    Lut::sign(poly_size, encode_fraction(1, 3))
}

impl ServerKey {
    fn sign_lut(&self) -> Lut {
        gate_sign_lut(self.params.polynomial_size)
    }

    fn gate_linear(
        &self,
        recipe: GateRecipe,
        a: &BoolCiphertext,
        b: &BoolCiphertext,
    ) -> Result<LweCiphertext, TfheError> {
        let mut acc = a.ct.clone();
        acc.scalar_mul_assign(recipe.w1);
        acc.add_scaled_assign(&b.ct, recipe.w2)?;
        acc.plaintext_add_assign(encode_fraction(recipe.offset_eighths, 3));
        Ok(acc)
    }

    /// Evaluates any two-input [`BinaryGate`]: the recipe's linear
    /// combination, the shared sign-LUT bootstrap, then a keyswitch
    /// back to the `n`-dimension key.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] if the inputs come from
    /// a different parameter set.
    pub fn binary_gate(
        &self,
        gate: BinaryGate,
        a: &BoolCiphertext,
        b: &BoolCiphertext,
    ) -> Result<BoolCiphertext, TfheError> {
        let sum = self.gate_linear(gate.recipe(), a, b)?;
        let boot = self.bsk.bootstrap(&sum, &self.sign_lut())?;
        Ok(BoolCiphertext { ct: self.ksk.keyswitch(&boot)? })
    }

    /// Homomorphic AND.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] if the inputs come from
    /// a different parameter set.
    pub fn and(&self, a: &BoolCiphertext, b: &BoolCiphertext) -> Result<BoolCiphertext, TfheError> {
        self.binary_gate(BinaryGate::And, a, b)
    }

    /// Homomorphic OR.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on parameter mismatch.
    pub fn or(&self, a: &BoolCiphertext, b: &BoolCiphertext) -> Result<BoolCiphertext, TfheError> {
        self.binary_gate(BinaryGate::Or, a, b)
    }

    /// Homomorphic NAND (the universal gate of the original TFHE demo).
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on parameter mismatch.
    pub fn nand(
        &self,
        a: &BoolCiphertext,
        b: &BoolCiphertext,
    ) -> Result<BoolCiphertext, TfheError> {
        self.binary_gate(BinaryGate::Nand, a, b)
    }

    /// Homomorphic NOR.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on parameter mismatch.
    pub fn nor(&self, a: &BoolCiphertext, b: &BoolCiphertext) -> Result<BoolCiphertext, TfheError> {
        self.binary_gate(BinaryGate::Nor, a, b)
    }

    /// Homomorphic XOR.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on parameter mismatch.
    pub fn xor(&self, a: &BoolCiphertext, b: &BoolCiphertext) -> Result<BoolCiphertext, TfheError> {
        self.binary_gate(BinaryGate::Xor, a, b)
    }

    /// Homomorphic XNOR.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on parameter mismatch.
    pub fn xnor(
        &self,
        a: &BoolCiphertext,
        b: &BoolCiphertext,
    ) -> Result<BoolCiphertext, TfheError> {
        self.binary_gate(BinaryGate::Xnor, a, b)
    }

    /// Homomorphic NOT — a negation of the ciphertext, with no
    /// bootstrap (and therefore no noise refresh).
    pub fn not(&self, a: &BoolCiphertext) -> BoolCiphertext {
        let mut ct = a.ct.clone();
        ct.negate();
        BoolCiphertext { ct }
    }

    /// Homomorphic multiplexer: `if sel { a } else { b }`, using two PBS
    /// and one shared keyswitch (the standard TFHE MUX circuit).
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on parameter mismatch.
    pub fn mux(
        &self,
        sel: &BoolCiphertext,
        a: &BoolCiphertext,
        b: &BoolCiphertext,
    ) -> Result<BoolCiphertext, TfheError> {
        let lut = self.sign_lut();
        // u1 = sel AND a (pre-keyswitch), u2 = (NOT sel) AND b.
        let u1_in = self.gate_linear(BinaryGate::And.recipe(), sel, a)?;
        let u1 = self.bsk.bootstrap(&u1_in, &lut)?;
        let not_sel = self.not(sel);
        let u2_in = self.gate_linear(BinaryGate::And.recipe(), &not_sel, b)?;
        let u2 = self.bsk.bootstrap(&u2_in, &lut)?;
        // sel·a and ¬sel·b are mutually exclusive: their sum plus 1/8
        // re-centres onto the ±1/8 encoding.
        let mut sum = u1;
        sum.add_assign(&u2)?;
        sum.plaintext_add_assign(encode_fraction(1, 3));
        Ok(BoolCiphertext { ct: self.ksk.keyswitch(&sum)? })
    }

    /// A profiled NAND gate, recording the Fig.-1 stage breakdown
    /// (linear ops, blind-rotation stages, sample extract, keyswitch).
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on parameter mismatch.
    pub fn nand_profiled(
        &self,
        a: &BoolCiphertext,
        b: &BoolCiphertext,
        timings: &mut StageTimings,
    ) -> Result<BoolCiphertext, TfheError> {
        let t0 = std::time::Instant::now();
        let sum = self.gate_linear(BinaryGate::Nand.recipe(), a, b)?;
        timings.add(PbsStage::LinearOps, t0.elapsed());
        let boot = self.bsk.bootstrap_profiled(&sum, &self.sign_lut(), timings)?;
        let switched = self.ksk.keyswitch_profiled(&boot, timings)?;
        Ok(BoolCiphertext { ct: switched })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::generate_keys;
    use crate::params::TfheParameters;

    fn fixture() -> (ClientKey, ServerKey) {
        generate_keys(&TfheParameters::testing_fast(), 555)
    }

    #[test]
    fn truth_tables_two_input_gates() {
        let (mut client, server) = fixture();
        type Gate =
            fn(&ServerKey, &BoolCiphertext, &BoolCiphertext) -> Result<BoolCiphertext, TfheError>;
        type GateRow = (&'static str, Gate, fn(bool, bool) -> bool);
        let gates: [GateRow; 6] = [
            ("and", ServerKey::and, |x, y| x & y),
            ("or", ServerKey::or, |x, y| x | y),
            ("nand", ServerKey::nand, |x, y| !(x & y)),
            ("nor", ServerKey::nor, |x, y| !(x | y)),
            ("xor", ServerKey::xor, |x, y| x ^ y),
            ("xnor", ServerKey::xnor, |x, y| !(x ^ y)),
        ];
        for (name, gate, model) in gates {
            for x in [false, true] {
                for y in [false, true] {
                    let cx = client.encrypt_bool(x);
                    let cy = client.encrypt_bool(y);
                    let out = gate(&server, &cx, &cy).unwrap();
                    assert_eq!(client.decrypt_bool(&out), model(x, y), "{name}({x}, {y})");
                }
            }
        }
    }

    #[test]
    fn binary_gate_dispatch_matches_eval_model() {
        let (mut client, server) = fixture();
        for gate in BinaryGate::ALL {
            for x in [false, true] {
                for y in [false, true] {
                    let cx = client.encrypt_bool(x);
                    let cy = client.encrypt_bool(y);
                    let out = server.binary_gate(gate, &cx, &cy).unwrap();
                    assert_eq!(client.decrypt_bool(&out), gate.eval(x, y), "{gate}({x}, {y})");
                }
            }
        }
    }

    #[test]
    fn recipe_offsets_encode_eighths() {
        let and = BinaryGate::And.recipe();
        assert_eq!(and.weights(), [1, 1]);
        assert_eq!(and.offset(), (1u64 << 61).wrapping_neg());
        assert_eq!(BinaryGate::Or.recipe().offset(), 1u64 << 61);
        assert_eq!(BinaryGate::Xor.to_string(), "xor");
    }

    #[test]
    fn not_gate_is_noise_free_negation() {
        let (mut client, server) = fixture();
        for v in [false, true] {
            let c = client.encrypt_bool(v);
            assert_eq!(client.decrypt_bool(&server.not(&c)), !v);
        }
    }

    #[test]
    fn mux_selects_correct_branch() {
        let (mut client, server) = fixture();
        for sel in [false, true] {
            for a in [false, true] {
                for b in [false, true] {
                    let cs = client.encrypt_bool(sel);
                    let ca = client.encrypt_bool(a);
                    let cb = client.encrypt_bool(b);
                    let out = server.mux(&cs, &ca, &cb).unwrap();
                    let expected = if sel { a } else { b };
                    assert_eq!(client.decrypt_bool(&out), expected, "mux({sel},{a},{b})");
                }
            }
        }
    }

    #[test]
    fn gates_compose_into_a_circuit() {
        // Full adder: sum = a ⊕ b ⊕ cin, carry = maj(a, b, cin).
        let (mut client, server) = fixture();
        for bits in 0..8u8 {
            let (a, b, cin) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
            let ca = client.encrypt_bool(a);
            let cb = client.encrypt_bool(b);
            let cc = client.encrypt_bool(cin);
            let ab = server.xor(&ca, &cb).unwrap();
            let sum = server.xor(&ab, &cc).unwrap();
            let carry = {
                let t1 = server.and(&ca, &cb).unwrap();
                let t2 = server.and(&ab, &cc).unwrap();
                server.or(&t1, &t2).unwrap()
            };
            assert_eq!(client.decrypt_bool(&sum), a ^ b ^ cin, "sum {bits:03b}");
            assert_eq!(client.decrypt_bool(&carry), (a & b) | ((a ^ b) & cin), "carry {bits:03b}");
        }
    }

    #[test]
    fn trivial_bool_ciphertexts_work_as_gate_inputs() {
        let (client, server) = fixture();
        let t = BoolCiphertext::trivial(server.params().lwe_dimension, true);
        let f = BoolCiphertext::trivial(server.params().lwe_dimension, false);
        let out = server.and(&t, &f).unwrap();
        assert!(!client.decrypt_bool(&out));
    }

    #[test]
    fn profiled_nand_matches_paper_breakdown_shape() {
        let (mut client, server) = fixture();
        let a = client.encrypt_bool(true);
        let b = client.encrypt_bool(true);
        let mut t = StageTimings::new();
        let out = server.nand_profiled(&a, &b, &mut t).unwrap();
        assert!(!client.decrypt_bool(&out));
        // PBS dominates, keyswitch is visible, linear ops are small —
        // the qualitative shape of Fig. 1.
        assert!(t.pbs_fraction() > 0.5, "pbs fraction {}", t.pbs_fraction());
        assert!(t.fraction(PbsStage::KeySwitch) > 0.0);
        assert!(t.fraction(PbsStage::LinearOps) < 0.2);
    }
}
