//! Multi-digit radix integers — TFHE beyond single look-up tables.
//!
//! §II-B notes TFHE "has been extended to include operations for
//! integer and fixed-point numbers". This module provides that layer:
//! an integer is a little-endian vector of `m`-bit digits, each held in
//! a shortint ciphertext with one spare *carry bit* (message space
//! `2^{m+1}`) so that a digit-wise addition cannot overflow before the
//! carries are propagated. Carry propagation costs two PBS per digit
//! (extract digit, extract carry) — the dominant cost, and precisely
//! the stream of dependent bootstraps the Strix batching architecture
//! is designed to feed.

use serde::{Deserialize, Serialize};

use crate::keys::{ClientKey, ServerKey};
use crate::shortint::ShortintCiphertext;
use crate::TfheError;

/// An encrypted unsigned integer in radix representation:
/// `value = Σ digit_i · 2^{m·i}` with `m = digit_bits`.
#[derive(Clone, Debug)]
pub struct RadixCiphertext {
    digits: Vec<ShortintCiphertext>,
    digit_bits: u32,
}

/// Shape of a radix integer: digit width and count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RadixSpec {
    /// Message bits per digit (`m`), excluding the carry bit.
    pub digit_bits: u32,
    /// Number of digits.
    pub num_digits: usize,
}

impl RadixSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if the shape is degenerate or exceeds 64 total bits.
    pub fn new(digit_bits: u32, num_digits: usize) -> Self {
        assert!(digit_bits >= 1, "digits need at least one bit");
        assert!(num_digits >= 1, "need at least one digit");
        assert!(
            digit_bits as usize * num_digits <= 64,
            "radix integers are limited to 64 cleartext bits"
        );
        Self { digit_bits, num_digits }
    }

    /// Exclusive upper bound of representable values (saturating at
    /// `u64::MAX` for the full 64-bit shape).
    pub fn modulus(&self) -> u64 {
        let bits = self.digit_bits as usize * self.num_digits;
        if bits >= 64 {
            u64::MAX
        } else {
            1u64 << bits
        }
    }
}

impl RadixCiphertext {
    /// Digit width `m` in bits.
    #[inline]
    pub fn digit_bits(&self) -> u32 {
        self.digit_bits
    }

    /// Number of digits.
    #[inline]
    pub fn num_digits(&self) -> usize {
        self.digits.len()
    }

    /// Borrow of the digit ciphertexts (little-endian).
    #[inline]
    pub fn digits(&self) -> &[ShortintCiphertext] {
        &self.digits
    }

    fn check_compatible(&self, other: &RadixCiphertext) -> Result<(), TfheError> {
        if self.digit_bits != other.digit_bits {
            return Err(TfheError::ParameterMismatch {
                what: "digit bits",
                left: self.digit_bits as usize,
                right: other.digit_bits as usize,
            });
        }
        if self.digits.len() != other.digits.len() {
            return Err(TfheError::ParameterMismatch {
                what: "digit count",
                left: self.digits.len(),
                right: other.digits.len(),
            });
        }
        Ok(())
    }
}

impl ClientKey {
    /// Encrypts `value` as a radix integer.
    ///
    /// Each digit is stored with one carry bit: the underlying shortint
    /// precision is `digit_bits + 1`.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::MessageOutOfRange`] if `value` does not fit
    /// the spec, or [`TfheError::InvalidParameters`] if a digit's
    /// message-plus-carry space exceeds the polynomial size.
    pub fn encrypt_radix(
        &mut self,
        value: u64,
        spec: RadixSpec,
    ) -> Result<RadixCiphertext, TfheError> {
        if value >= spec.modulus() {
            return Err(TfheError::MessageOutOfRange { message: value, bound: spec.modulus() });
        }
        let base = 1u64 << spec.digit_bits;
        let mut rest = value;
        let mut digits = Vec::with_capacity(spec.num_digits);
        for _ in 0..spec.num_digits {
            digits.push(self.encrypt_shortint(rest % base, spec.digit_bits + 1)?);
            rest /= base;
        }
        Ok(RadixCiphertext { digits, digit_bits: spec.digit_bits })
    }

    /// Decrypts a radix integer.
    ///
    /// Digits are reduced mod `2^m` in case un-propagated carries
    /// remain (the homomorphic ops below always propagate).
    pub fn decrypt_radix(&self, ct: &RadixCiphertext) -> u64 {
        let base = 1u64 << ct.digit_bits;
        let mut value = 0u64;
        for digit in ct.digits.iter().rev() {
            value = value.wrapping_mul(base).wrapping_add(self.decrypt_shortint(digit) % base);
        }
        value
    }
}

impl ServerKey {
    /// Homomorphic radix addition with full carry propagation:
    /// `2·num_digits − 1` bootstraps.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on shape mismatch and
    /// propagates PBS errors.
    pub fn radix_add(
        &self,
        a: &RadixCiphertext,
        b: &RadixCiphertext,
    ) -> Result<RadixCiphertext, TfheError> {
        a.check_compatible(b)?;
        let m = a.digit_bits;
        let base = 1u64 << m;
        let mut out = Vec::with_capacity(a.digits.len());
        let mut carry: Option<ShortintCiphertext> = None;
        for (da, db) in a.digits.iter().zip(&b.digits) {
            // Raw sum in the (m+1)-bit space: ≤ 2(2^m−1) + 1 < 2^{m+1}.
            let mut sum = da.clone();
            sum.add_assign(db)?;
            if let Some(c) = &carry {
                sum.add_assign(c)?;
            }
            // Two PBS: split the sum into digit and carry-out.
            let digit = self.apply_lut(&sum, move |v| v % base)?;
            carry = Some(self.apply_lut(&sum, move |v| v / base)?);
            out.push(digit);
        }
        // The final carry out is dropped: addition is mod 2^{m·d}.
        Ok(RadixCiphertext { digits: out, digit_bits: m })
    }

    /// Adds a cleartext constant (same carry-propagation cost as
    /// [`Self::radix_add`]).
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::MessageOutOfRange`] if the scalar exceeds
    /// the integer's modulus, and propagates PBS errors.
    pub fn radix_scalar_add(
        &self,
        a: &RadixCiphertext,
        scalar: u64,
    ) -> Result<RadixCiphertext, TfheError> {
        let spec = RadixSpec::new(a.digit_bits, a.digits.len());
        if scalar >= spec.modulus() {
            return Err(TfheError::MessageOutOfRange { message: scalar, bound: spec.modulus() });
        }
        let m = a.digit_bits;
        let base = 1u64 << m;
        let mut rest = scalar;
        let mut out = Vec::with_capacity(a.digits.len());
        let mut carry: Option<ShortintCiphertext> = None;
        for da in &a.digits {
            let mut sum = da.clone();
            sum.scalar_add_assign(rest % base)?;
            rest /= base;
            if let Some(c) = &carry {
                sum.add_assign(c)?;
            }
            let digit = self.apply_lut(&sum, move |v| v % base)?;
            carry = Some(self.apply_lut(&sum, move |v| v / base)?);
            out.push(digit);
        }
        Ok(RadixCiphertext { digits: out, digit_bits: m })
    }

    /// Homomorphic doubling (`×2`): a digit-wise shift with carry
    /// propagation; the scalar fits the carry bit by construction.
    ///
    /// # Errors
    ///
    /// Propagates PBS errors.
    pub fn radix_double(&self, a: &RadixCiphertext) -> Result<RadixCiphertext, TfheError> {
        self.radix_add(a, a)
    }

    /// Homomorphic equality: per-digit bivariate equality then an
    /// AND-reduction, returning a 1-bit shortint (1 = equal).
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on shape mismatch and
    /// propagates PBS errors.
    pub fn radix_eq(
        &self,
        a: &RadixCiphertext,
        b: &RadixCiphertext,
    ) -> Result<ShortintCiphertext, TfheError> {
        a.check_compatible(b)?;
        let mut acc: Option<ShortintCiphertext> = None;
        for (da, db) in a.digits.iter().zip(&b.digits) {
            let eq = self.apply_bivariate_lut(da, db, |x, y| u64::from(x == y))?;
            acc = Some(match acc {
                None => eq,
                Some(prev) => self.apply_bivariate_lut(&prev, &eq, |x, y| x & y)?,
            });
        }
        // lint:allow(panic) specs guarantee at least one digit
        Ok(acc.expect("specs guarantee at least one digit"))
    }

    /// Number of bootstraps a radix addition of this shape costs — the
    /// quantity a Strix workload graph charges for it.
    pub fn radix_add_pbs_cost(&self, spec: RadixSpec) -> usize {
        2 * spec.num_digits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::generate_keys;
    use crate::params::TfheParameters;

    // 1-bit digits at the toy N = 256: the shortint space is 2 bits and
    // bivariate ops pack into 4 bits, leaving LUT boxes of 16
    // coefficients — comfortably above the modulus-switch noise. Four
    // digits give values in [0, 16).
    fn spec() -> RadixSpec {
        RadixSpec::new(1, 4)
    }

    fn keys() -> (ClientKey, ServerKey) {
        generate_keys(&TfheParameters::testing_fast(), 20_26)
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let (mut client, _) = keys();
        for v in [0u64, 1, 7, 10, 15] {
            let ct = client.encrypt_radix(v, spec()).unwrap();
            assert_eq!(ct.num_digits(), 4);
            assert_eq!(client.decrypt_radix(&ct), v, "v={v}");
        }
    }

    #[test]
    fn out_of_range_rejected() {
        let (mut client, _) = keys();
        assert!(matches!(
            client.encrypt_radix(16, spec()),
            Err(TfheError::MessageOutOfRange { message: 16, bound: 16 })
        ));
    }

    #[test]
    fn addition_with_carry_chains() {
        let (mut client, server) = keys();
        for (a, b) in [(5u64, 7u64), (9, 6), (15, 1), (3, 3), (0, 0)] {
            let ca = client.encrypt_radix(a, spec()).unwrap();
            let cb = client.encrypt_radix(b, spec()).unwrap();
            let sum = server.radix_add(&ca, &cb).unwrap();
            assert_eq!(client.decrypt_radix(&sum), (a + b) % 16, "{a}+{b}");
        }
    }

    #[test]
    fn scalar_addition() {
        let (mut client, server) = keys();
        let ca = client.encrypt_radix(9, spec()).unwrap();
        let sum = server.radix_scalar_add(&ca, 5).unwrap();
        assert_eq!(client.decrypt_radix(&sum), 14);
        assert!(server.radix_scalar_add(&ca, 16).is_err());
    }

    #[test]
    fn doubling() {
        let (mut client, server) = keys();
        let ca = client.encrypt_radix(6, spec()).unwrap();
        let doubled = server.radix_double(&ca).unwrap();
        assert_eq!(client.decrypt_radix(&doubled), 12);
    }

    #[test]
    fn additions_chain_through_carry_propagation() {
        // (5 + 7) + 9 = 21 ≡ 5 (mod 16): the second addition takes
        // bootstrapped digits as inputs, proving the carry cleanup.
        let (mut client, server) = keys();
        let a = client.encrypt_radix(5, spec()).unwrap();
        let b = client.encrypt_radix(7, spec()).unwrap();
        let c = client.encrypt_radix(9, spec()).unwrap();
        let ab = server.radix_add(&a, &b).unwrap();
        let abc = server.radix_add(&ab, &c).unwrap();
        assert_eq!(client.decrypt_radix(&abc), 5);
    }

    #[test]
    fn equality() {
        let (mut client, server) = keys();
        let a = client.encrypt_radix(11, spec()).unwrap();
        let b = client.encrypt_radix(11, spec()).unwrap();
        let c = client.encrypt_radix(12, spec()).unwrap();
        assert_eq!(client.decrypt_shortint(&server.radix_eq(&a, &b).unwrap()), 1);
        assert_eq!(client.decrypt_shortint(&server.radix_eq(&a, &c).unwrap()), 0);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let (mut client, server) = keys();
        let a = client.encrypt_radix(1, RadixSpec::new(1, 4)).unwrap();
        let b = client.encrypt_radix(1, RadixSpec::new(1, 3)).unwrap();
        assert!(server.radix_add(&a, &b).is_err());
        let c = client.encrypt_radix(1, RadixSpec::new(2, 4)).unwrap();
        assert!(server.radix_add(&a, &c).is_err());
    }

    #[test]
    fn spec_invariants() {
        assert_eq!(RadixSpec::new(1, 4).modulus(), 16);
        assert_eq!(RadixSpec::new(4, 16).modulus(), u64::MAX);
        let (_, server) = keys();
        assert_eq!(server.radix_add_pbs_cost(spec()), 8);
    }

    #[test]
    #[should_panic(expected = "64 cleartext bits")]
    fn oversized_spec_panics() {
        RadixSpec::new(4, 17);
    }
}
