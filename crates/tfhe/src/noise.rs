//! Noise analysis: predicted variances and empirical measurement.
//!
//! The predictions follow the standard TFHE noise propagation formulas
//! (Chillotti et al. 2020; Joye's SoK, the paper's \[43\]). They are used
//! in two ways: to document why the Table IV parameter sets decode
//! correctly, and in statistical tests asserting that the measured noise
//! of our implementation stays within a small factor of theory — a
//! functional check that the FFT path is not silently corrupting
//! ciphertexts.
//!
//! All variances are *relative to the torus* (the torus has size 1).

use crate::keys::ClientKey;
use crate::lwe::LweCiphertext;
use crate::params::{PbsKernel, TfheParameters};

/// Variance of a fresh LWE encryption.
pub fn fresh_lwe_variance(params: &TfheParameters) -> f64 {
    params.lwe_noise_std * params.lwe_noise_std
}

/// Variance added by one external product inside blind rotation,
/// i.e. the per-iteration noise growth. Two terms: the GGSW noise
/// amplified by the decomposed digits, and the gadget rounding error
/// amplified by the secret key.
pub fn external_product_variance(params: &TfheParameters) -> f64 {
    let k = params.glwe_dimension as f64;
    let n = params.polynomial_size as f64;
    let l = params.pbs_level as f64;
    let b = 2.0f64.powi(params.pbs_base_log as i32);
    let var_ggsw = params.glwe_noise_std * params.glwe_noise_std;
    // Digit-amplified key noise: (k+1)·l·N·(B²+2)/12 · σ².
    let key_term = (k + 1.0) * l * n * (b * b + 2.0) / 12.0 * var_ggsw;
    // Gadget rounding: (1 + k·N)/2 · B^{-2l}/12 (binary secret).
    let round_term = (1.0 + k * n) / 2.0 * b.powf(-2.0 * l) / 12.0;
    key_term + round_term
}

/// Variance of a classical PBS output (fresh noise, independent of
/// input noise): `n` accumulated external products.
pub fn classical_pbs_output_variance(params: &TfheParameters) -> f64 {
    params.lwe_dimension as f64 * external_product_variance(params)
}

/// Variance added by one *grouped* external product of the multi-bit
/// kernel at group width `group_bits`. The combined GGSW is a sum of
/// `2^m` monomial-weighted pattern entries — monomials have unit norm,
/// so the key-noise term carries a `2^m` factor — and the gadget
/// rounding term loses the classical path's binary-secret `1/2` (the
/// combined message `X^ρ` has norm 1, not expectation 1/2).
pub fn multi_bit_external_product_variance(params: &TfheParameters, group_bits: usize) -> f64 {
    let k = params.glwe_dimension as f64;
    let n = params.polynomial_size as f64;
    let l = params.pbs_level as f64;
    let b = 2.0f64.powi(params.pbs_base_log as i32);
    let var_ggsw = params.glwe_noise_std * params.glwe_noise_std;
    let patterns = 2.0f64.powi(group_bits as i32);
    let key_term = (k + 1.0) * l * n * (b * b + 2.0) / 12.0 * patterns * var_ggsw;
    let round_term = (1.0 + k * n) * b.powf(-2.0 * l) / 12.0;
    key_term + round_term
}

/// Variance of a multi-bit PBS output at grouping factor `g`:
/// `⌊n/g⌋` full-width grouped products plus, when `g` does not divide
/// `n`, one remainder product of width `n mod g`.
pub fn multi_bit_pbs_output_variance(params: &TfheParameters, grouping_factor: usize) -> f64 {
    let full_groups = params.lwe_dimension / grouping_factor;
    let remainder = params.lwe_dimension % grouping_factor;
    let mut var = full_groups as f64 * multi_bit_external_product_variance(params, grouping_factor);
    if remainder > 0 {
        var += multi_bit_external_product_variance(params, remainder);
    }
    var
}

/// Variance of a PBS output under an explicit kernel choice.
pub fn pbs_output_variance_for(params: &TfheParameters, kernel: PbsKernel) -> f64 {
    match kernel {
        PbsKernel::Classical => classical_pbs_output_variance(params),
        PbsKernel::MultiBit { grouping_factor } => {
            multi_bit_pbs_output_variance(params, grouping_factor)
        }
    }
}

/// Variance of a PBS output under the kernel the parameter set selects
/// (`params.pbs_kernel`); classical parameters keep their historical
/// value.
pub fn pbs_output_variance(params: &TfheParameters) -> f64 {
    pbs_output_variance_for(params, params.pbs_kernel)
}

/// Variance added by keyswitching back to the `n`-dimension key.
pub fn keyswitch_added_variance(params: &TfheParameters) -> f64 {
    let kn = params.extracted_lwe_dimension() as f64;
    let l = params.ks_level as f64;
    let b = 2.0f64.powi(params.ks_base_log as i32);
    let var_ks = params.lwe_noise_std * params.lwe_noise_std;
    let key_term = kn * l * (b * b + 2.0) / 12.0 * var_ks / b / b; // digits ≤ B/2
    let round_term = kn / 2.0 * b.powf(-2.0 * l.round()) / 12.0;
    // The digit-amplified term uses E[d²] ≈ B²/12 per digit; combined
    // with l levels this simplifies to kn·l·(B²+2)/12·σ² — keep the
    // conservative (un-divided) form.
    let conservative_key_term = kn * l * (b * b + 2.0) / 12.0 * var_ks;
    let _ = key_term;
    conservative_key_term + round_term
}

/// Variance added by switching the modulus from `q` to `2N` at the
/// start of PBS, expressed back on the torus.
pub fn modswitch_variance(params: &TfheParameters) -> f64 {
    let two_n = (2 * params.polynomial_size) as f64;
    let n = params.lwe_dimension as f64;
    // Rounding each of n+1 elements to 1/2N: uniform error of variance
    // (1/2N)²/12, the mask terms multiplied by binary key bits (E=1/2).
    (1.0 + n / 2.0) / (two_n * two_n * 12.0)
}

/// Distance from the `±1/8` gate encodings to the nearest decision
/// boundary, in torus units — the numerator of every gate margin.
pub const GATE_DECISION_DISTANCE: f64 = 0.125;

/// Distance from a nominal encoding to the nearest decision boundary
/// of a `precision_bits`-bit LUT with one padding bit, in torus units:
/// half a redundancy box, `2^-(p+2)`. For `p = 1` (the sign LUT) this
/// is [`GATE_DECISION_DISTANCE`].
pub fn lut_decision_distance(precision_bits: u32) -> f64 {
    2.0f64.powi(-(precision_bits as i32 + 2))
}

/// Variance of a full LUT-request output under an explicit kernel:
/// one PBS (which resets the input noise) followed by the keyswitch
/// back to the small key — the wire noise a fused linear→PBS→KS
/// request node hands to its consumers. This is the per-op helper the
/// runtime crate's static analyzer calls.
pub fn lut_output_variance_for(params: &TfheParameters, kernel: PbsKernel) -> f64 {
    pbs_output_variance_for(params, kernel) + keyswitch_added_variance(params)
}

/// Variance of the weighted sum `Σ wᵢ·xᵢ` of independent ciphertexts
/// with the given per-input variances: `Σ wᵢ²·varᵢ`. Plaintext offsets
/// are exact and add nothing.
pub fn linear_combination_variance(weights: &[i64], input_variances: &[f64]) -> f64 {
    weights.iter().zip(input_variances).map(|(&w, &v)| (w as f64) * (w as f64) * v).sum()
}

/// Margin in standard deviations: `distance / sqrt(variance)`. Returns
/// infinity for zero variance (a trivially noiseless wire).
pub fn margin_sigmas(distance: f64, variance: f64) -> f64 {
    if variance <= 0.0 {
        return f64::INFINITY;
    }
    distance / variance.sqrt()
}

/// Total phase variance at the *decision point* of a gate bootstrap
/// under an explicit kernel choice: two fresh gate inputs (each PBS +
/// KS output) combined linearly with unit weights, plus modulus
/// switching.
pub fn gate_decision_variance_for(params: &TfheParameters, kernel: PbsKernel) -> f64 {
    2.0 * (pbs_output_variance_for(params, kernel) + keyswitch_added_variance(params))
        + modswitch_variance(params)
}

/// As [`gate_decision_variance_for`] under the parameter set's own
/// kernel.
pub fn gate_decision_variance(params: &TfheParameters) -> f64 {
    gate_decision_variance_for(params, params.pbs_kernel)
}

/// The margin-to-noise ratio of gate bootstrapping under an explicit
/// kernel choice: distance from the `±1/8` encodings to the decision
/// boundary (1/8 of the torus) divided by the phase standard deviation.
/// Values above ~6 give negligible error probability; Table IV sets
/// land well above that for both kernels.
pub fn gate_margin_sigmas_for(params: &TfheParameters, kernel: PbsKernel) -> f64 {
    0.125 / gate_decision_variance_for(params, kernel).sqrt()
}

/// As [`gate_margin_sigmas_for`] under the parameter set's own kernel.
pub fn gate_margin_sigmas(params: &TfheParameters) -> f64 {
    gate_margin_sigmas_for(params, params.pbs_kernel)
}

/// Measures the signed torus error of a ciphertext against the expected
/// plaintext, in torus units.
///
/// # Panics
///
/// Panics if the ciphertext decrypts under neither client key.
pub fn measure_error(client: &ClientKey, ct: &LweCiphertext, expected_pt: u64) -> f64 {
    // lint:allow(panic) documented panic contract
    let phase = client.decrypt_phase(ct).expect("ciphertext matches client key");
    let err = phase.wrapping_sub(expected_pt);
    err as i64 as f64 / 2.0f64.powi(64)
}

/// Sample standard deviation of a set of torus errors.
pub fn error_std(errors: &[f64]) -> f64 {
    if errors.is_empty() {
        return 0.0;
    }
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    let var = errors.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / errors.len() as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::{encode_bool, Lut};
    use crate::keys::generate_keys;
    use crate::torus::encode_fraction;

    #[test]
    fn table_iv_sets_have_huge_gate_margins() {
        for set in crate::params::ParameterSet::ALL {
            let p = set.parameters();
            let sigmas = gate_margin_sigmas(&p);
            assert!(sigmas > 10.0, "{}: only {sigmas:.1} sigmas of margin", p.name);
        }
    }

    #[test]
    fn shipped_sets_keep_margin_above_threshold_for_every_kernel() {
        // Regression for the kernel-aware margin helpers: every shipped
        // parameter set must stay above the gate decision threshold
        // under the classical kernel *and* under multi-bit at g ∈ {2,3}
        // — the configurations the runtime dispatcher may select.
        let kernels = [
            PbsKernel::Classical,
            PbsKernel::MultiBit { grouping_factor: 2 },
            PbsKernel::MultiBit { grouping_factor: 3 },
        ];
        for set in crate::params::ParameterSet::ALL {
            let p = set.parameters();
            for kernel in kernels {
                let sigmas = gate_margin_sigmas_for(&p, kernel);
                assert!(sigmas > 10.0, "{} / {kernel}: only {sigmas:.1} sigmas", p.name);
            }
        }
    }

    #[test]
    fn margin_helpers_follow_the_parameter_sets_kernel() {
        let classical = TfheParameters::set_ii();
        let multi_bit = classical.clone().with_kernel(PbsKernel::MultiBit { grouping_factor: 2 });
        assert_eq!(
            gate_margin_sigmas(&classical),
            gate_margin_sigmas_for(&classical, PbsKernel::Classical)
        );
        assert_eq!(
            gate_margin_sigmas(&multi_bit),
            gate_margin_sigmas_for(&multi_bit, PbsKernel::MultiBit { grouping_factor: 2 })
        );
        // The 2^g key-noise amplification must show up as a strictly
        // smaller margin than classical on the same set.
        assert!(gate_margin_sigmas(&multi_bit) < gate_margin_sigmas(&classical));
    }

    #[test]
    fn multi_bit_variance_counts_remainder_group() {
        let p = TfheParameters::testing_fast(); // n = 64
                                                // g = 2 divides n: 32 full-width products.
        let g2 = multi_bit_pbs_output_variance(&p, 2);
        assert_eq!(g2, 32.0 * multi_bit_external_product_variance(&p, 2));
        // g = 3 leaves a width-1 remainder: 21 full + 1 narrow product.
        let g3 = multi_bit_pbs_output_variance(&p, 3);
        let expected = 21.0 * multi_bit_external_product_variance(&p, 3)
            + multi_bit_external_product_variance(&p, 1);
        assert_eq!(g3, expected);
        // Wider groups amplify the key term per product.
        assert!(
            multi_bit_external_product_variance(&p, 3) > multi_bit_external_product_variance(&p, 2)
        );
    }

    #[test]
    fn variance_components_are_positive_and_finite() {
        let p = TfheParameters::set_i();
        for v in [
            fresh_lwe_variance(&p),
            external_product_variance(&p),
            pbs_output_variance(&p),
            keyswitch_added_variance(&p),
            modswitch_variance(&p),
            gate_decision_variance(&p),
        ] {
            assert!(v.is_finite() && v > 0.0, "{v}");
        }
    }

    #[test]
    fn more_levels_reduce_rounding_noise() {
        let mut p2 = TfheParameters::set_i();
        p2.pbs_base_log = 6;
        p2.pbs_level = 2;
        let mut p4 = p2.clone();
        p4.pbs_level = 4;
        // With 4 levels the gadget covers more bits → smaller rounding
        // term (the key term grows, but at these sizes rounding
        // dominates for l=2, B=2^6).
        let round2 = external_product_variance(&p2);
        let round4 = external_product_variance(&p4);
        assert!(round4 < round2);
    }

    #[test]
    fn measured_fresh_noise_matches_parameter() {
        let params = TfheParameters::testing_fast();
        let (mut client, _) = generate_keys(&params, 42);
        let pt = encode_fraction(1, 3);
        let errors: Vec<f64> = (0..500)
            .map(|_| {
                let ct = client.encrypt_torus(pt);
                measure_error(&client, &ct, pt)
            })
            .collect();
        let measured = error_std(&errors);
        let ratio = measured / params.lwe_noise_std;
        assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn measured_pbs_noise_within_theory_bound() {
        // PBS output noise must be within a small factor of the
        // prediction (FFT adds a little; the formula is approximate).
        let params = TfheParameters::testing_fast();
        let (mut client, server) = generate_keys(&params, 43);
        let lut = Lut::sign(params.polynomial_size, encode_fraction(1, 3));
        let predicted = pbs_output_variance(&params).sqrt();
        let mut errors = Vec::new();
        for _ in 0..20 {
            let ct = client.encrypt_torus(encode_bool(true));
            let boot = server.bootstrap_key().bootstrap(&ct, &lut).unwrap();
            errors.push(measure_error(&client, &boot, encode_fraction(1, 3)));
        }
        let measured = error_std(&errors);
        assert!(
            measured < predicted * 8.0 + 1e-9,
            "measured {measured:e} vs predicted {predicted:e}"
        );
    }

    #[test]
    fn error_std_of_constant_is_zero() {
        assert_eq!(error_std(&[0.5, 0.5, 0.5]), 0.0);
        assert_eq!(error_std(&[]), 0.0);
    }
}
