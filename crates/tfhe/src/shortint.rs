//! Small-integer ciphertexts with LUT evaluation via PBS.
//!
//! Messages are `p`-bit unsigned integers encoded in the top bits of the
//! torus with one padding bit: `pt = m · q/2^{p+1}`. Programmable
//! bootstrapping evaluates *any* function `f: [0,2^p) → [0,2^p)` in a
//! single PBS — the paper's headline capability ("homomorphic look-up
//! tables", Table I) and the mechanism behind the Zama Deep-NN ReLU
//! activations of Fig. 7.

use crate::bootstrap::Lut;
use crate::keys::{ClientKey, ServerKey};
use crate::lwe::LweCiphertext;
use crate::torus::decode_message;
use crate::TfheError;

/// An encrypted `p`-bit unsigned integer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShortintCiphertext {
    pub(crate) ct: LweCiphertext,
    pub(crate) message_bits: u32,
}

impl ShortintCiphertext {
    /// The message precision in bits.
    #[inline]
    pub fn message_bits(&self) -> u32 {
        self.message_bits
    }

    /// The message-space size `2^p`.
    #[inline]
    pub fn message_modulus(&self) -> u64 {
        1u64 << self.message_bits
    }

    /// Borrow of the underlying LWE ciphertext.
    #[inline]
    pub fn as_lwe(&self) -> &LweCiphertext {
        &self.ct
    }

    /// A trivial (noiseless, insecure) encryption of a known message.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::MessageOutOfRange`] if `m >= 2^p`.
    pub fn trivial(dimension: usize, m: u64, message_bits: u32) -> Result<Self, TfheError> {
        check_range(m, message_bits)?;
        let pt = m << (64 - message_bits - 1);
        Ok(Self { ct: LweCiphertext::trivial(dimension, pt), message_bits })
    }

    /// Homomorphic addition (mod `2^p` as long as the sum stays below
    /// the padding bit; callers chaining many additions should
    /// re-bootstrap via an identity LUT to reset both noise and range).
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] if precisions or
    /// dimensions differ.
    pub fn add_assign(&mut self, other: &ShortintCiphertext) -> Result<(), TfheError> {
        if self.message_bits != other.message_bits {
            return Err(TfheError::ParameterMismatch {
                what: "message bits",
                left: self.message_bits as usize,
                right: other.message_bits as usize,
            });
        }
        self.ct.add_assign(&other.ct)
    }

    /// Homomorphic multiplication by a small non-negative constant.
    pub fn scalar_mul_assign(&mut self, c: u64) {
        self.ct.scalar_mul_assign(c as i64);
    }

    /// Adds a plaintext constant.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::MessageOutOfRange`] if `m >= 2^p`.
    pub fn scalar_add_assign(&mut self, m: u64) -> Result<(), TfheError> {
        check_range(m, self.message_bits)?;
        self.ct.plaintext_add_assign(m << (64 - self.message_bits - 1));
        Ok(())
    }
}

fn check_range(m: u64, message_bits: u32) -> Result<(), TfheError> {
    let bound = 1u64 << message_bits;
    if m >= bound {
        return Err(TfheError::MessageOutOfRange { message: m, bound });
    }
    Ok(())
}

impl ClientKey {
    /// Encrypts a `p`-bit message.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::MessageOutOfRange`] if `m >= 2^p`, or
    /// [`TfheError::InvalidParameters`] if `2^p` exceeds the polynomial
    /// size (no LUT could ever be built for it).
    pub fn encrypt_shortint(
        &mut self,
        m: u64,
        message_bits: u32,
    ) -> Result<ShortintCiphertext, TfheError> {
        check_range(m, message_bits)?;
        if (1usize << message_bits) > self.params().polynomial_size {
            return Err(TfheError::InvalidParameters("message space larger than polynomial size"));
        }
        let pt = m << (64 - message_bits - 1);
        Ok(ShortintCiphertext { ct: self.encrypt_torus(pt), message_bits })
    }

    /// Decrypts a `p`-bit message.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext dimension matches neither client key.
    pub fn decrypt_shortint(&self, ct: &ShortintCiphertext) -> u64 {
        // lint:allow(panic) ciphertext was produced under this key's dimension
        let phase = self.decrypt_phase(&ct.ct).expect("shortint ciphertext dimension");
        decode_message(phase, ct.message_bits + 1)
    }
}

impl ServerKey {
    /// Applies an arbitrary univariate function via one programmable
    /// bootstrap, refreshing noise in the process. The output message
    /// is reduced mod `2^p`.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on dimension mismatch or
    /// [`TfheError::InvalidParameters`] if the message space does not
    /// fit the polynomial size.
    pub fn apply_lut<F>(
        &self,
        ct: &ShortintCiphertext,
        f: F,
    ) -> Result<ShortintCiphertext, TfheError>
    where
        F: Fn(u64) -> u64,
    {
        let p = ct.message_bits;
        let modulus = 1u64 << p;
        let lut = Lut::from_function(self.params.polynomial_size, p, |m| f(m) % modulus)?;
        let boot = self.bsk.bootstrap(&ct.ct, &lut)?;
        let switched = self.ksk.keyswitch(&boot)?;
        Ok(ShortintCiphertext { ct: switched, message_bits: p })
    }

    /// Applies a univariate function to a whole batch of ciphertexts
    /// with one pass over the bootstrapping key
    /// ([`crate::bootstrap::BootstrapKey::bootstrap_batch`]) — the
    /// user-facing batched counterpart of [`Self::apply_lut`]. All
    /// inputs must share one precision; each may use its own function.
    /// One invalid input fails the whole call; the streaming runtime's
    /// executor drives `bootstrap_batch` directly instead, isolating
    /// per-request failures.
    ///
    /// # Errors
    ///
    /// As [`Self::apply_lut`], for any element of the batch.
    pub fn apply_lut_batch<F>(
        &self,
        cts: &[ShortintCiphertext],
        fs: &[F],
    ) -> Result<Vec<ShortintCiphertext>, TfheError>
    where
        F: Fn(u64) -> u64,
    {
        if cts.is_empty() {
            return Ok(Vec::new());
        }
        if fs.len() != cts.len() {
            return Err(TfheError::ParameterMismatch {
                what: "batch length",
                left: cts.len(),
                right: fs.len(),
            });
        }
        let p = cts[0].message_bits;
        let modulus = 1u64 << p;
        let mut luts = Vec::with_capacity(cts.len());
        for (ct, f) in cts.iter().zip(fs) {
            if ct.message_bits != p {
                return Err(TfheError::ParameterMismatch {
                    what: "message bits",
                    left: p as usize,
                    right: ct.message_bits as usize,
                });
            }
            luts.push(Lut::from_function(self.params.polynomial_size, p, |m| f(m) % modulus)?);
        }
        let jobs: Vec<crate::bootstrap::PbsJob<'_>> = cts
            .iter()
            .zip(&luts)
            .map(|(ct, lut)| crate::bootstrap::PbsJob { ct: &ct.ct, lut })
            .collect();
        let booted = self.bsk.bootstrap_batch(&jobs)?;
        booted
            .iter()
            .map(|b| Ok(ShortintCiphertext { ct: self.ksk.keyswitch(b)?, message_bits: p }))
            .collect()
    }

    /// Bootstrapped identity: refreshes noise without changing the
    /// message.
    ///
    /// # Errors
    ///
    /// As [`Self::apply_lut`].
    pub fn refresh(&self, ct: &ShortintCiphertext) -> Result<ShortintCiphertext, TfheError> {
        self.apply_lut(ct, |m| m)
    }

    /// ReLU over the two's-complement interpretation of the message
    /// space: values in `[2^{p-1}, 2^p)` are treated as negative and
    /// clamped to zero. This is the activation the Zama Deep-NN
    /// workload evaluates with one PBS per neuron.
    ///
    /// # Errors
    ///
    /// As [`Self::apply_lut`].
    pub fn relu(&self, ct: &ShortintCiphertext) -> Result<ShortintCiphertext, TfheError> {
        let half = 1u64 << (ct.message_bits - 1);
        self.apply_lut(ct, move |m| if m < half { m } else { 0 })
    }

    /// Applies an arbitrary *bivariate* function in a single PBS by
    /// packing both operands into one ciphertext: `a` is shifted into
    /// the high half of a `2p`-bit message (`a·2^p + b`) and a `2p`-bit
    /// LUT evaluates `f(a, b)`. The standard shortint trick.
    ///
    /// Noise caveat: the packed `2p`-bit LUT has boxes of `N/2^{2p}`
    /// coefficients; the modulus-switch noise (σ ≈ 1.7 rotation steps,
    /// independent of `N`) must fit well inside half a box, so reliable
    /// use needs `N ≳ 2^{2p+4}` — small precisions (1–3 bits) at
    /// realistic polynomial sizes.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] if the operands'
    /// precisions differ, or [`TfheError::InvalidParameters`] if the
    /// packed `2p`-bit space exceeds the polynomial size.
    pub fn apply_bivariate_lut<F>(
        &self,
        a: &ShortintCiphertext,
        b: &ShortintCiphertext,
        f: F,
    ) -> Result<ShortintCiphertext, TfheError>
    where
        F: Fn(u64, u64) -> u64,
    {
        let p = a.message_bits;
        if b.message_bits != p {
            return Err(TfheError::ParameterMismatch {
                what: "message bits",
                left: p as usize,
                right: b.message_bits as usize,
            });
        }
        let packed_bits = 2 * p;
        if (1usize << packed_bits) > self.params.polynomial_size {
            return Err(TfheError::InvalidParameters("message space larger than polynomial size"));
        }
        let shift = 1u64 << p;
        let modulus = shift;
        // In the packed 2p-bit space, `a`'s existing encoding
        // a·q/2^{p+1} = (a·2^p)·q/2^{2p+1} already sits in the high
        // half. `b` must move down to b·q/2^{2p+1}, which takes one
        // re-encoding bootstrap (there is no homomorphic right-shift).
        let n = self.params.polynomial_size;
        let down_lut = Lut::from_function_scaled(n, p, 64 - packed_bits - 1, |m| m)?;
        let b_low = self.ksk.keyswitch(&self.bsk.bootstrap(&b.ct, &down_lut)?)?;
        let mut packed = a.ct.clone();
        packed.add_assign(&b_low)?;
        // The 2p-bit bivariate LUT, emitting results in the p-bit space.
        let lut = Lut::from_function_scaled(n, packed_bits, 64 - p - 1, |m| {
            let (hi, lo) = (m >> p, m & (shift - 1));
            f(hi, lo) % modulus
        })?;
        let boot = self.bsk.bootstrap(&packed, &lut)?;
        let switched = self.ksk.keyswitch(&boot)?;
        Ok(ShortintCiphertext { ct: switched, message_bits: p })
    }

    /// Homomorphic multiplication mod `2^p` via one bivariate PBS.
    ///
    /// # Errors
    ///
    /// As [`Self::apply_bivariate_lut`].
    pub fn mul(
        &self,
        a: &ShortintCiphertext,
        b: &ShortintCiphertext,
    ) -> Result<ShortintCiphertext, TfheError> {
        self.apply_bivariate_lut(a, b, |x, y| x * y)
    }

    /// Homomorphic minimum via one bivariate PBS.
    ///
    /// # Errors
    ///
    /// As [`Self::apply_bivariate_lut`].
    pub fn min(
        &self,
        a: &ShortintCiphertext,
        b: &ShortintCiphertext,
    ) -> Result<ShortintCiphertext, TfheError> {
        self.apply_bivariate_lut(a, b, |x, y| x.min(y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::generate_keys;
    use crate::params::TfheParameters;

    const P: u32 = 3; // 3-bit messages

    fn fixture() -> (ClientKey, ServerKey) {
        generate_keys(&TfheParameters::testing_fast(), 909)
    }

    #[test]
    fn encrypt_decrypt_all_messages() {
        let (mut client, _) = fixture();
        for m in 0..8u64 {
            let ct = client.encrypt_shortint(m, P).unwrap();
            assert_eq!(client.decrypt_shortint(&ct), m);
        }
    }

    #[test]
    fn out_of_range_messages_are_rejected() {
        let (mut client, _) = fixture();
        assert!(matches!(
            client.encrypt_shortint(8, P),
            Err(TfheError::MessageOutOfRange { message: 8, bound: 8 })
        ));
        // Message space larger than N is impossible to bootstrap.
        assert!(client.encrypt_shortint(0, 9).is_err());
    }

    #[test]
    fn identity_lut_refreshes_every_message() {
        let (mut client, server) = fixture();
        for m in 0..8u64 {
            let ct = client.encrypt_shortint(m, P).unwrap();
            let refreshed = server.refresh(&ct).unwrap();
            assert_eq!(client.decrypt_shortint(&refreshed), m, "m={m}");
        }
    }

    #[test]
    fn arbitrary_lut_evaluation() {
        let (mut client, server) = fixture();
        let f = |m: u64| (m * m + 3) % 8;
        for m in 0..8u64 {
            let ct = client.encrypt_shortint(m, P).unwrap();
            let out = server.apply_lut(&ct, f).unwrap();
            assert_eq!(client.decrypt_shortint(&out), f(m), "m={m}");
        }
    }

    #[test]
    fn relu_clamps_negative_half() {
        let (mut client, server) = fixture();
        // Signed interpretation: 0..3 are positive, 4..7 are -4..-1.
        for m in 0..8u64 {
            let ct = client.encrypt_shortint(m, P).unwrap();
            let out = server.relu(&ct).unwrap();
            let expected = if m < 4 { m } else { 0 };
            assert_eq!(client.decrypt_shortint(&out), expected, "m={m}");
        }
    }

    #[test]
    fn batched_lut_matches_per_message_results() {
        let (mut client, server) = fixture();
        let cts: Vec<ShortintCiphertext> =
            (0..8u64).map(|m| client.encrypt_shortint(m, P).unwrap()).collect();
        let fs: Vec<_> = (0..8u64).map(|i| move |m: u64| (m + i) % 8).collect();
        let outs = server.apply_lut_batch(&cts, &fs).unwrap();
        for (i, out) in outs.iter().enumerate() {
            let expected = (i as u64 + i as u64) % 8;
            assert_eq!(client.decrypt_shortint(out), expected, "i={i}");
        }
        assert!(server.apply_lut_batch::<fn(u64) -> u64>(&[], &[]).unwrap().is_empty());
    }

    #[test]
    fn batched_lut_rejects_mixed_precision_and_length() {
        let (mut client, server) = fixture();
        let a = client.encrypt_shortint(1, 2).unwrap();
        let b = client.encrypt_shortint(1, 3).unwrap();
        let id = |m: u64| m;
        assert!(server.apply_lut_batch(&[a.clone(), b], &[id, id]).is_err());
        assert!(server.apply_lut_batch(&[a], &[id, id]).is_err());
    }

    #[test]
    fn homomorphic_add_and_scalar_ops() {
        let (mut client, server) = fixture();
        let mut a = client.encrypt_shortint(2, P).unwrap();
        let b = client.encrypt_shortint(1, P).unwrap();
        a.add_assign(&b).unwrap();
        assert_eq!(client.decrypt_shortint(&a), 3);
        a.scalar_mul_assign(2);
        assert_eq!(client.decrypt_shortint(&a), 6);
        // Refresh keeps it decodable after the multiply.
        let refreshed = server.refresh(&a).unwrap();
        assert_eq!(client.decrypt_shortint(&refreshed), 6);
        let mut c = client.encrypt_shortint(1, P).unwrap();
        c.scalar_add_assign(4).unwrap();
        assert_eq!(client.decrypt_shortint(&c), 5);
    }

    #[test]
    fn mixed_precision_is_rejected() {
        let (mut client, _) = fixture();
        let mut a = client.encrypt_shortint(1, 2).unwrap();
        let b = client.encrypt_shortint(1, 3).unwrap();
        assert!(matches!(
            a.add_assign(&b),
            Err(TfheError::ParameterMismatch { what: "message bits", .. })
        ));
    }

    #[test]
    fn trivial_shortint() {
        let (client, server) = fixture();
        let ct = ShortintCiphertext::trivial(server.params().lwe_dimension, 5, P).unwrap();
        assert_eq!(client.decrypt_shortint(&ct), 5);
        assert!(ShortintCiphertext::trivial(10, 8, P).is_err());
    }

    #[test]
    fn bivariate_multiplication_full_table() {
        // 2-bit operands: the packed space is 4 bits ≤ log2(N) = 8.
        let (mut client, server) = fixture();
        for a in 0..4u64 {
            for b in 0..4u64 {
                let ca = client.encrypt_shortint(a, 2).unwrap();
                let cb = client.encrypt_shortint(b, 2).unwrap();
                let prod = server.mul(&ca, &cb).unwrap();
                assert_eq!(client.decrypt_shortint(&prod), (a * b) % 4, "{a}*{b}");
            }
        }
    }

    #[test]
    fn bivariate_min() {
        let (mut client, server) = fixture();
        for (a, b) in [(0u64, 3u64), (2, 1), (3, 3)] {
            let ca = client.encrypt_shortint(a, 2).unwrap();
            let cb = client.encrypt_shortint(b, 2).unwrap();
            let m = server.min(&ca, &cb).unwrap();
            assert_eq!(client.decrypt_shortint(&m), a.min(b), "min({a},{b})");
        }
    }

    #[test]
    fn bivariate_rejects_mixed_precision_and_oversized_space() {
        let (mut client, server) = fixture();
        let a = client.encrypt_shortint(1, 2).unwrap();
        let b = client.encrypt_shortint(1, 3).unwrap();
        assert!(server.mul(&a, &b).is_err());
        // 2p = 10 bits > log2(256): impossible to pack.
        let a5 = client.encrypt_shortint(1, 5).unwrap();
        let b5 = client.encrypt_shortint(1, 5).unwrap();
        assert!(matches!(server.mul(&a5, &b5), Err(TfheError::InvalidParameters(_))));
    }
}
