//! Bootstrapping-key unrolling (Bourse et al., the paper's \[51\]; the
//! technique behind Matcha, §VII).
//!
//! Standard blind rotation runs `n` sequential CMUX iterations, one per
//! secret-key bit. Unrolling by two handles a *pair* of bits per
//! iteration:
//!
//! ```text
//! acc ← X^{ã₁s₁ + ã₂s₂} · acc
//!     = acc + s₁s₂·(X^{ã₁+ã₂}−1)·acc + s₁(1−s₂)·(X^{ã₁}−1)·acc
//!           + (1−s₁)s₂·(X^{ã₂}−1)·acc
//! ```
//!
//! so each pair needs **three** GGSW ciphertexts (of `s₁s₂`, `s₁(1−s₂)`
//! and `(1−s₁)s₂`) instead of two — 1.5× the key material — but only
//! `⌈n/2⌉` sequential iterations. Matcha uses this to cut latency; for
//! a *streaming* architecture like Strix the per-iteration work triples
//! while iterations only halve, which is exactly why the paper batches
//! instead of unrolling. The `ablations` bench quantifies that
//! trade-off on the simulator; this module provides the real
//! cryptographic implementation so the comparison is grounded.

use strix_fft::NegacyclicFft;

use crate::bootstrap::Lut;
use crate::decompose::DecompositionParams;
use crate::ggsw::{FourierGgsw, GgswCiphertext};
use crate::glwe::{GlweCiphertext, GlweSecretKey};
use crate::lwe::{LweCiphertext, LweSecretKey};
use crate::params::TfheParameters;
use crate::rng::NoiseSampler;
use crate::torus::modulus_switch;
use crate::TfheError;

/// One unrolled key entry: the three GGSWs of a secret-bit pair.
#[derive(Clone, Debug)]
struct PairEntry {
    /// GGSW(s₁·s₂).
    both: FourierGgsw,
    /// GGSW(s₁·(1−s₂)).
    only_first: FourierGgsw,
    /// GGSW((1−s₁)·s₂).
    only_second: FourierGgsw,
}

/// A 2-unrolled bootstrapping key: `⌈n/2⌉` iterations, 1.5× key bytes.
#[derive(Clone, Debug)]
pub struct UnrolledBootstrapKey {
    pairs: Vec<PairEntry>,
    /// Standard GGSW for the last bit when `n` is odd.
    tail: Option<FourierGgsw>,
    fft: NegacyclicFft,
    glwe_dimension: usize,
    poly_size: usize,
    input_dimension: usize,
}

impl UnrolledBootstrapKey {
    /// Generates the unrolled key for `lwe_sk` under `glwe_sk`.
    pub fn generate(
        lwe_sk: &LweSecretKey,
        glwe_sk: &GlweSecretKey,
        params: &TfheParameters,
        rng: &mut NoiseSampler,
    ) -> Self {
        let decomp = DecompositionParams::new(params.pbs_base_log, params.pbs_level);
        let fft = NegacyclicFft::with_backend(params.polynomial_size, params.fft_backend)
            // lint:allow(panic) parameters were validated at construction
            .expect("validated parameters have power-of-two N and an available backend");
        let std = params.glwe_noise_std;
        let bits = lwe_sk.bits();
        let mut encrypt =
            |m: u64| GgswCiphertext::encrypt_scalar(m, glwe_sk, decomp, std, rng).to_fourier(&fft);
        let mut pairs = Vec::with_capacity(bits.len() / 2);
        for pair in bits.chunks_exact(2) {
            let (s1, s2) = (pair[0], pair[1]);
            pairs.push(PairEntry {
                both: encrypt(s1 * s2),
                only_first: encrypt(s1 * (1 - s2)),
                only_second: encrypt((1 - s1) * s2),
            });
        }
        let tail = (bits.len() % 2 == 1).then(|| encrypt(bits[bits.len() - 1]));
        Self {
            pairs,
            tail,
            fft,
            glwe_dimension: params.glwe_dimension,
            poly_size: params.polynomial_size,
            input_dimension: bits.len(),
        }
    }

    /// Number of sequential blind-rotation iterations: `⌈n/2⌉`.
    pub fn iterations(&self) -> usize {
        self.pairs.len() + usize::from(self.tail.is_some())
    }

    /// Input LWE dimension `n`.
    pub fn input_dimension(&self) -> usize {
        self.input_dimension
    }

    /// Output LWE dimension `k·N`.
    pub fn output_dimension(&self) -> usize {
        self.glwe_dimension * self.poly_size
    }

    /// Total Fourier key bytes — 1.5× the standard key for even `n`.
    pub fn byte_size(&self) -> usize {
        let pair_bytes: usize = self
            .pairs
            .iter()
            .map(|p| p.both.byte_size() + p.only_first.byte_size() + p.only_second.byte_size())
            .sum();
        pair_bytes + self.tail.as_ref().map_or(0, FourierGgsw::byte_size)
    }

    /// Unrolled blind rotation followed by sample extraction.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on shape mismatch.
    pub fn bootstrap(&self, ct: &LweCiphertext, lut: &Lut) -> Result<LweCiphertext, TfheError> {
        Ok(self.blind_rotate(ct, lut)?.sample_extract())
    }

    /// The unrolled blind rotation.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on shape mismatch.
    pub fn blind_rotate(&self, ct: &LweCiphertext, lut: &Lut) -> Result<GlweCiphertext, TfheError> {
        if ct.dimension() != self.input_dimension {
            return Err(TfheError::ParameterMismatch {
                what: "lwe dimension",
                left: ct.dimension(),
                right: self.input_dimension,
            });
        }
        if lut.poly_size() != self.poly_size {
            return Err(TfheError::ParameterMismatch {
                what: "polynomial size",
                left: lut.poly_size(),
                right: self.poly_size,
            });
        }
        let log2_two_n = self.poly_size.trailing_zeros() + 1;
        let two_n = 2 * self.poly_size;
        let b_tilde = modulus_switch(ct.body(), log2_two_n) as usize;
        let mut acc = GlweCiphertext::trivial(self.glwe_dimension, lut.poly().rotate_left(b_tilde));

        let mask = ct.mask();
        for (pair_idx, entry) in self.pairs.iter().enumerate() {
            let a1 = modulus_switch(mask[2 * pair_idx], log2_two_n) as usize;
            let a2 = modulus_switch(mask[2 * pair_idx + 1], log2_two_n) as usize;
            if a1 == 0 && a2 == 0 {
                continue;
            }
            // acc += Σ G_c ⊡ (X^{shift_c}·acc − acc) over the three
            // non-identity cases of the pair.
            let mut update = GlweCiphertext::zero(self.glwe_dimension, self.poly_size);
            for (ggsw, shift) in [
                (&entry.both, (a1 + a2) % two_n),
                (&entry.only_first, a1),
                (&entry.only_second, a2),
            ] {
                if shift == 0 {
                    // X^0·acc − acc = 0: no contribution (the encrypted
                    // selector multiplies zero).
                    continue;
                }
                let mut diff = acc.rotate_right(shift);
                diff.sub_assign(&acc)?;
                update.add_assign(&ggsw.external_product(&diff, &self.fft))?;
            }
            acc.add_assign(&update)?;
        }
        if let Some(tail) = &self.tail {
            let a = modulus_switch(mask[self.input_dimension - 1], log2_two_n) as usize;
            if a != 0 {
                let mut diff = acc.rotate_right(a);
                diff.sub_assign(&acc)?;
                acc.add_assign(&tail.external_product(&diff, &self.fft))?;
            }
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::{decode_bool, encode_bool, BootstrapKey};
    use crate::torus::{decode_message, encode_fraction};

    struct Fixture {
        params: TfheParameters,
        lwe_sk: LweSecretKey,
        extracted: LweSecretKey,
        unrolled: UnrolledBootstrapKey,
        standard: BootstrapKey,
        rng: NoiseSampler,
    }

    fn fixture(params: TfheParameters) -> Fixture {
        let mut rng = NoiseSampler::from_seed(777);
        let lwe_sk = LweSecretKey::generate(params.lwe_dimension, &mut rng);
        let glwe_sk =
            GlweSecretKey::generate(params.glwe_dimension, params.polynomial_size, &mut rng);
        let extracted = glwe_sk.to_extracted_lwe_key();
        let unrolled = UnrolledBootstrapKey::generate(&lwe_sk, &glwe_sk, &params, &mut rng);
        let standard = BootstrapKey::generate(&lwe_sk, &glwe_sk, &params, &mut rng);
        Fixture { params, lwe_sk, extracted, unrolled, standard, rng }
    }

    #[test]
    fn iteration_count_halves() {
        let fx = fixture(TfheParameters::testing_fast());
        assert_eq!(fx.unrolled.iterations(), fx.params.lwe_dimension / 2);
    }

    #[test]
    fn key_grows_by_half() {
        let fx = fixture(TfheParameters::testing_fast());
        let ratio = fx.unrolled.byte_size() as f64 / fx.standard.byte_size() as f64;
        assert!((ratio - 1.5).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn unrolled_bootstrap_matches_standard_sign() {
        let fx = &mut fixture(TfheParameters::testing_fast());
        let lut = Lut::sign(fx.params.polynomial_size, encode_fraction(1, 3));
        for b in [true, false] {
            let ct = fx.lwe_sk.encrypt(encode_bool(b), fx.params.lwe_noise_std, &mut fx.rng);
            let out_u = fx.unrolled.bootstrap(&ct, &lut).unwrap();
            let out_s = fx.standard.bootstrap(&ct, &lut).unwrap();
            let phase_u = fx.extracted.decrypt_phase(&out_u).unwrap();
            let phase_s = fx.extracted.decrypt_phase(&out_s).unwrap();
            assert_eq!(decode_bool(phase_u), b, "unrolled b={b}");
            assert_eq!(decode_bool(phase_u), decode_bool(phase_s));
        }
    }

    #[test]
    fn unrolled_bootstrap_evaluates_luts() {
        let fx = &mut fixture(TfheParameters::testing_fast());
        let p = 2u32;
        let f = |m: u64| (m + 2) % 4;
        let lut = Lut::from_function(fx.params.polynomial_size, p, f).unwrap();
        for m in 0..4u64 {
            let pt = m << (64 - p - 1);
            let ct = fx.lwe_sk.encrypt(pt, fx.params.lwe_noise_std, &mut fx.rng);
            let out = fx.unrolled.bootstrap(&ct, &lut).unwrap();
            let phase = fx.extracted.decrypt_phase(&out).unwrap();
            assert_eq!(decode_message(phase, p + 1), f(m), "m={m}");
        }
    }

    #[test]
    fn odd_dimension_uses_a_tail_entry() {
        let mut params = TfheParameters::testing_fast();
        params.lwe_dimension = 65;
        let fx = &mut fixture(params.clone());
        assert_eq!(fx.unrolled.iterations(), 33); // 32 pairs + tail
        let lut = Lut::sign(params.polynomial_size, encode_fraction(1, 3));
        let ct = fx.lwe_sk.encrypt(encode_bool(true), params.lwe_noise_std, &mut fx.rng);
        let out = fx.unrolled.bootstrap(&ct, &lut).unwrap();
        let phase = fx.extracted.decrypt_phase(&out).unwrap();
        assert!(decode_bool(phase));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let fx = fixture(TfheParameters::testing_fast());
        let lut = Lut::sign(fx.params.polynomial_size, encode_fraction(1, 3));
        let wrong = LweCiphertext::trivial(10, 0);
        assert!(fx.unrolled.bootstrap(&wrong, &lut).is_err());
    }
}
