//! Reusable per-thread working memory for the PBS hot path.
//!
//! FPT and BTS (and Strix itself) make the same observation about the
//! blind-rotation inner loop: the win comes from keeping its working
//! set *resident* — streamed key material flows past a fixed set of
//! on-chip buffers — rather than re-materialising state per operation.
//! The software analogue is [`PbsScratch`]: one allocation up front,
//! zero heap traffic afterwards. Every CMUX iteration of
//! [`crate::bootstrap::BootstrapKey`] then reuses
//!
//! * an extraction-state buffer and a level-major digit-polynomial
//!   buffer for the lane-parallel gadget decomposition (decomposer
//!   unit),
//! * one Fourier spectrum for the transformed digits and `k+1` fused
//!   accumulator spectra (FFT + VMA units),
//! * a time-domain buffer for the inverse transform (IFFT unit),
//! * two GLWE-shaped buffers for the rotate-and-subtract difference and
//!   the external-product output (rotator + accumulator units),
//! * the blocked-CMUX staging set: per-job split-complex digit and
//!   accumulator spectra for one block of [`CMUX_JOB_BLOCK`] jobs plus
//!   a packed digit buffer and a batched inverse-transform buffer.
//!
//! Scratch is deliberately **not** shared between threads: a parallel
//! epoch ([`crate::bootstrap::BootstrapKey::bootstrap_batch_parallel`])
//! gives each worker its own `PbsScratch` while all workers share one
//! `&BootstrapKey`.

use strix_fft::{Complex64, SoaSpectrum};

use crate::decompose::DecompositionParams;
use crate::glwe::GlweCiphertext;

/// Number of accumulators the blocked CMUX processes per bootstrapping
/// key entry before moving to the next block (the job-blocking factor
/// of the batched blind rotation).
///
/// Rationale: within a block, the VMA loop is **row-major** — one
/// `(k+1)·N/2`-point key row is loaded and applied to every job in the
/// block before the next row streams in, so the row stays in L1 across
/// `CMUX_JOB_BLOCK` uses instead of being re-fetched per job. The
/// block size bounds the staging footprint (each job stages
/// `(k+1)·l + (k+1)` split spectra); 4 keeps that under ~256 KiB at
/// the paper's set-II/III shapes — resident in L2 — while already
/// amortising the key stream 4×. Results are bit-identical for every
/// block size, so this is purely a locality knob.
pub const CMUX_JOB_BLOCK: usize = 4;

/// Scratch for one FFT-path external product (decompose → FFT → VMA →
/// IFFT), owned by exactly one thread.
#[derive(Clone, Debug)]
pub struct ExternalProductScratch {
    /// Lane-parallel decomposition state (`N` extraction words) for
    /// the level-major decomposition pass.
    pub(crate) decomp_state: Vec<u64>,
    /// Level-major decomposed digit polynomials (`l · N`).
    pub(crate) digit_levels: Vec<i64>,
    /// Spectrum of the current digit polynomial (`N/2`), in the
    /// transform plan's digit-reversed slot order.
    pub(crate) digit_spec: Vec<Complex64>,
    /// Fused accumulator spectra, column-major (`(k+1) · N/2`), in the
    /// same slot order — pointwise accumulation never reorders.
    pub(crate) fourier_acc: Vec<Complex64>,
    /// Inverse-transform output buffer (`N`).
    pub(crate) time_domain: Vec<f64>,
    glwe_dimension: usize,
    poly_size: usize,
    level: usize,
}

impl ExternalProductScratch {
    /// Allocates scratch for external products of shape `(k, N, l)`.
    pub fn new(glwe_dimension: usize, poly_size: usize, decomp: DecompositionParams) -> Self {
        let half = poly_size / 2;
        Self {
            decomp_state: vec![0u64; poly_size],
            digit_levels: vec![0i64; decomp.level * poly_size],
            digit_spec: vec![Complex64::ZERO; half],
            fourier_acc: vec![Complex64::ZERO; (glwe_dimension + 1) * half],
            time_domain: vec![0.0f64; poly_size],
            glwe_dimension,
            poly_size,
            level: decomp.level,
        }
    }

    /// Asserts this scratch matches the `(k, N, l)` shape of the
    /// operation about to use it.
    ///
    /// # Panics
    ///
    /// Panics on any mismatch — mixing scratch between parameter sets
    /// is a programming error, not a recoverable condition.
    pub(crate) fn check_shape(&self, glwe_dimension: usize, poly_size: usize, level: usize) {
        assert_eq!(self.glwe_dimension, glwe_dimension, "scratch glwe dimension mismatch");
        assert_eq!(self.poly_size, poly_size, "scratch polynomial size mismatch");
        assert_eq!(self.level, level, "scratch decomposition level mismatch");
    }
}

/// Per-thread reusable working memory for programmable bootstrapping:
/// the external-product scratch plus the two GLWE-shaped buffers of the
/// CMUX (`diff = X^ã·acc − acc` and the external-product output).
///
/// Build one with [`crate::bootstrap::BootstrapKey::scratch`] (or
/// [`Self::new`] from raw parameters), keep it alive for as many
/// bootstraps as you like, and never share it across threads. With a
/// scratch in hand the whole blind rotation performs no heap
/// allocation inside the CMUX loop.
#[derive(Clone, Debug)]
pub struct PbsScratch {
    /// Rotate-and-subtract difference buffer.
    pub(crate) diff: GlweCiphertext,
    /// External-product output buffer.
    pub(crate) prod: GlweCiphertext,
    /// Scratch for the external product itself.
    pub(crate) ep: ExternalProductScratch,
    /// One job's full digit decomposition, poly-major then level-major
    /// within each polynomial (`(k+1)·l · N` digits) — the packed
    /// input of the batched forward transform.
    pub(crate) all_digits: Vec<i64>,
    /// Per-job split digit spectra for one block:
    /// [`CMUX_JOB_BLOCK`] batches of `(k+1)·l` transforms of `N/2`
    /// points (the FFT-unit output staging of the blocked CMUX).
    pub(crate) digit_batch: Vec<SoaSpectrum>,
    /// Per-job split accumulator spectra for one block:
    /// [`CMUX_JOB_BLOCK`] batches of `k+1` transforms of `N/2` points
    /// (the VMA accumulation staging).
    pub(crate) acc_batch: Vec<SoaSpectrum>,
    /// Batched inverse-transform output (`(k+1) · N` reals), reused by
    /// every job of every block.
    pub(crate) time_batch: Vec<f64>,
}

impl PbsScratch {
    /// Allocates scratch for bootstraps of shape `(k, N, l)`.
    pub fn new(glwe_dimension: usize, poly_size: usize, decomp: DecompositionParams) -> Self {
        let half = poly_size / 2;
        let cols = glwe_dimension + 1;
        Self {
            diff: GlweCiphertext::zero(glwe_dimension, poly_size),
            prod: GlweCiphertext::zero(glwe_dimension, poly_size),
            ep: ExternalProductScratch::new(glwe_dimension, poly_size, decomp),
            all_digits: vec![0i64; cols * decomp.level * poly_size],
            digit_batch: (0..CMUX_JOB_BLOCK)
                .map(|_| SoaSpectrum::new(cols * decomp.level, half))
                .collect(),
            acc_batch: (0..CMUX_JOB_BLOCK).map(|_| SoaSpectrum::new(cols, half)).collect(),
            time_batch: vec![0.0f64; cols * poly_size],
        }
    }

    /// Asserts this scratch matches the `(k, N, l)` shape of the key
    /// about to use it.
    ///
    /// # Panics
    ///
    /// Panics on any mismatch.
    pub(crate) fn check_shape(&self, glwe_dimension: usize, poly_size: usize, level: usize) {
        assert_eq!(self.diff.dimension(), glwe_dimension, "scratch glwe dimension mismatch");
        assert_eq!(self.diff.poly_size(), poly_size, "scratch polynomial size mismatch");
        self.ep.check_shape(glwe_dimension, poly_size, level);
    }
}

/// Per-thread reusable working memory for the **multi-bit** grouped
/// blind rotation ([`crate::bootstrap::MultiBitBootstrapKey`]).
///
/// The grouped kernel never rotates the accumulator in the time domain,
/// so there are no `diff`/`prod` GLWE buffers; instead each job of a
/// block stages a *combined* GGSW — the monomial-weighted sum of the
/// group's `2^g` pattern entries — in a split-complex spectrum the same
/// shape as one bootstrapping-key entry, plus one scratch monomial
/// spectrum reused across every `(row, col)` MAC of a pattern.
#[derive(Clone, Debug)]
pub struct MultiBitPbsScratch {
    /// Lane-parallel decomposition state (`N` extraction words).
    pub(crate) decomp_state: Vec<u64>,
    /// One job's full digit decomposition (`(k+1)·l · N` digits),
    /// poly-major then level-major — the packed input of the batched
    /// forward transform.
    pub(crate) all_digits: Vec<i64>,
    /// Per-job split digit spectra for one block ([`CMUX_JOB_BLOCK`]
    /// batches of `(k+1)·l` transforms of `N/2` points).
    pub(crate) digit_batch: Vec<SoaSpectrum>,
    /// Per-job split accumulator spectra (`k+1` transforms each).
    pub(crate) acc_batch: Vec<SoaSpectrum>,
    /// Per-job combined-GGSW spectra: `(k+1)·l · (k+1)` transforms of
    /// `N/2` points each — one full key entry's worth per job of a
    /// block, assembled fresh per group.
    pub(crate) comb_batch: Vec<SoaSpectrum>,
    /// Monomial spectrum staging (real plane, `N/2` points).
    pub(crate) mono_re: Vec<f64>,
    /// Monomial spectrum staging (imaginary plane, `N/2` points).
    pub(crate) mono_im: Vec<f64>,
    /// Per-(job, pattern) monomial degrees for one block
    /// ([`CMUX_JOB_BLOCK`] · `2^g` entries, pattern-minor).
    pub(crate) degrees: Vec<usize>,
    /// Batched inverse-transform output (`(k+1) · N` reals).
    pub(crate) time_batch: Vec<f64>,
    glwe_dimension: usize,
    poly_size: usize,
    level: usize,
    grouping_factor: usize,
}

impl MultiBitPbsScratch {
    /// Allocates scratch for multi-bit bootstraps of shape
    /// `(k, N, l)` at `grouping_factor` bits per key entry.
    pub fn new(
        glwe_dimension: usize,
        poly_size: usize,
        decomp: DecompositionParams,
        grouping_factor: usize,
    ) -> Self {
        let half = poly_size / 2;
        let cols = glwe_dimension + 1;
        let rows = cols * decomp.level;
        Self {
            decomp_state: vec![0u64; poly_size],
            all_digits: vec![0i64; rows * poly_size],
            digit_batch: (0..CMUX_JOB_BLOCK).map(|_| SoaSpectrum::new(rows, half)).collect(),
            acc_batch: (0..CMUX_JOB_BLOCK).map(|_| SoaSpectrum::new(cols, half)).collect(),
            comb_batch: (0..CMUX_JOB_BLOCK).map(|_| SoaSpectrum::new(rows * cols, half)).collect(),
            mono_re: vec![0.0f64; half],
            mono_im: vec![0.0f64; half],
            degrees: vec![0usize; CMUX_JOB_BLOCK << grouping_factor],
            time_batch: vec![0.0f64; cols * poly_size],
            glwe_dimension,
            poly_size,
            level: decomp.level,
            grouping_factor,
        }
    }

    /// Asserts this scratch matches the `(k, N, l, g)` shape of the key
    /// about to use it.
    ///
    /// # Panics
    ///
    /// Panics on any mismatch.
    pub(crate) fn check_shape(
        &self,
        glwe_dimension: usize,
        poly_size: usize,
        level: usize,
        grouping_factor: usize,
    ) {
        assert_eq!(self.glwe_dimension, glwe_dimension, "scratch glwe dimension mismatch");
        assert_eq!(self.poly_size, poly_size, "scratch polynomial size mismatch");
        assert_eq!(self.level, level, "scratch decomposition level mismatch");
        assert_eq!(self.grouping_factor, grouping_factor, "scratch grouping factor mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_sized_to_the_shape() {
        let decomp = DecompositionParams::new(8, 3);
        let s = PbsScratch::new(2, 64, decomp);
        assert_eq!(s.ep.decomp_state.len(), 64);
        assert_eq!(s.ep.digit_levels.len(), 3 * 64);
        assert_eq!(s.ep.digit_spec.len(), 32);
        assert_eq!(s.ep.fourier_acc.len(), 3 * 32);
        assert_eq!(s.ep.time_domain.len(), 64);
        assert_eq!(s.diff.dimension(), 2);
        assert_eq!(s.prod.poly_size(), 64);
        // Blocked-CMUX staging: one digit buffer per job of a block,
        // (k+1)·l transforms each, plus k+1 accumulator spectra.
        assert_eq!(s.all_digits.len(), 3 * 3 * 64);
        assert_eq!(s.digit_batch.len(), CMUX_JOB_BLOCK);
        assert_eq!(s.digit_batch[0].count(), 3 * 3);
        assert_eq!(s.digit_batch[0].transform_len(), 32);
        assert_eq!(s.acc_batch.len(), CMUX_JOB_BLOCK);
        assert_eq!(s.acc_batch[0].count(), 3);
        assert_eq!(s.time_batch.len(), 3 * 64);
        s.check_shape(2, 64, 3);
    }

    #[test]
    #[should_panic(expected = "scratch polynomial size mismatch")]
    fn shape_mismatch_panics() {
        let decomp = DecompositionParams::new(8, 3);
        PbsScratch::new(1, 64, decomp).check_shape(1, 128, 3);
    }

    #[test]
    fn multi_bit_buffers_are_sized_to_the_shape() {
        let decomp = DecompositionParams::new(8, 3);
        let s = MultiBitPbsScratch::new(1, 64, decomp, 2);
        assert_eq!(s.decomp_state.len(), 64);
        assert_eq!(s.all_digits.len(), 2 * 3 * 64);
        assert_eq!(s.digit_batch.len(), CMUX_JOB_BLOCK);
        assert_eq!(s.digit_batch[0].count(), 2 * 3);
        assert_eq!(s.acc_batch[0].count(), 2);
        // One combined key entry per job: (k+1)l rows × (k+1) columns.
        assert_eq!(s.comb_batch.len(), CMUX_JOB_BLOCK);
        assert_eq!(s.comb_batch[0].count(), 2 * 3 * 2);
        assert_eq!(s.comb_batch[0].transform_len(), 32);
        assert_eq!(s.mono_re.len(), 32);
        assert_eq!(s.mono_im.len(), 32);
        assert_eq!(s.degrees.len(), CMUX_JOB_BLOCK << 2);
        assert_eq!(s.time_batch.len(), 2 * 64);
        s.check_shape(1, 64, 3, 2);
    }

    #[test]
    #[should_panic(expected = "scratch grouping factor mismatch")]
    fn multi_bit_grouping_mismatch_panics() {
        let decomp = DecompositionParams::new(8, 3);
        MultiBitPbsScratch::new(1, 64, decomp, 2).check_shape(1, 64, 3, 3);
    }
}
