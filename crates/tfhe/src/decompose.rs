//! Signed gadget decomposition (Algorithm 1's `Decompose`, Eq. (3)).
//!
//! A torus element `a` is approximated by `l` balanced signed digits
//! `d_1 … d_l` with `|d_i| ≤ B/2` such that
//!
//! ```text
//! a ≈ Σ_{i=1}^{l} d_i · q / B^i,   error ≤ q / (2 B^l)
//! ```
//!
//! matching the paper's Eq. (3). Following §V-B, the implementation is
//! multiplier-free — a *rounding step* (mask the contributing bits, add
//! the carry from the first dropped bit) followed by an *extraction step*
//! (mask each β-bit digit, balance it against B/2 with a carry into the
//! next digit) — which is exactly the datapath of the Strix decomposer
//! unit and lets the hardware model in `strix-core` reuse this code as
//! its golden reference.

use serde::{Deserialize, Serialize};

use crate::poly::TorusPolynomial;
use crate::torus::TORUS_BITS;

/// Decomposition parameters: base `B = 2^base_log` and level count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DecompositionParams {
    /// log2 of the decomposition base `B`.
    pub base_log: u32,
    /// Number of levels `l`.
    pub level: usize,
}

impl DecompositionParams {
    /// Creates decomposition parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < base_log · level <= 64` — the digits must
    /// address a non-empty slice of the torus word.
    pub fn new(base_log: u32, level: usize) -> Self {
        assert!(base_log > 0 && level > 0, "decomposition must be non-trivial");
        assert!(
            base_log as usize * level <= TORUS_BITS as usize,
            "decomposition ({base_log} bits x {level} levels) exceeds the torus width"
        );
        Self { base_log, level }
    }

    /// Number of bits retained by the rounding step: `base_log · level`.
    #[inline]
    pub fn represented_bits(&self) -> u32 {
        self.base_log * self.level as u32
    }

    /// The gadget scale of level `i` (1-indexed): `q / B^i` as a torus
    /// element, i.e. `2^(64 - base_log·i)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is 0 or exceeds the level count.
    #[inline]
    pub fn gadget_scale(&self, i: usize) -> u64 {
        assert!(i >= 1 && i <= self.level, "gadget level {i} out of range");
        1u64 << (TORUS_BITS - self.base_log * i as u32)
    }

    /// Rounds `a` to the closest torus element representable by the
    /// gadget, i.e. the closest multiple of `q / B^l` (§V-B rounding
    /// step).
    #[inline]
    pub fn closest_representable(&self, a: u64) -> u64 {
        let drop = TORUS_BITS - self.represented_bits();
        if drop == 0 {
            return a;
        }
        // Add the carry from the first dropped bit, then clear the
        // dropped bits. Overflow wraps, which is correct on the torus.
        let carry = (a >> (drop - 1)) & 1;
        ((a >> drop).wrapping_add(carry)) << drop
    }

    /// Decomposes a torus element into `level` balanced signed digits,
    /// most-significant level first (`digits[0]` scales by `q/B`).
    ///
    /// Digits satisfy `-B/2 <= d < B/2` except that a chain of carries
    /// may produce `d = B/2` at the most significant level; either way
    /// `|d| <= B/2` holds, the bound used by every noise analysis.
    pub fn decompose(&self, a: u64) -> Vec<i64> {
        let mut digits = vec![0i64; self.level];
        self.decompose_into(a, &mut digits);
        digits
    }

    /// As [`Self::decompose`], writing into a caller-provided buffer
    /// (hot path of the blind rotation).
    ///
    /// # Panics
    ///
    /// Panics if `digits.len() != self.level`.
    pub fn decompose_into(&self, a: u64, digits: &mut [i64]) {
        self.decomposer().decompose_into(a, digits);
    }

    /// Builds the hoisted-constant [`Decomposer`] for these parameters:
    /// every shift, mask and threshold the per-element decomposition
    /// needs, derived once instead of on every call. Hot loops
    /// (keyswitching over `k·N` mask elements, the CMUX's per-polynomial
    /// decomposition) construct one before the loop and call its
    /// [`Decomposer::decompose_into`] inside — bit-identical to
    /// [`Self::decompose_into`], which now delegates to it.
    #[inline]
    pub fn decomposer(&self) -> Decomposer {
        let rep_bits = self.represented_bits();
        Decomposer {
            base_log: self.base_log,
            level: self.level,
            drop: TORUS_BITS - rep_bits,
            state_mask: if rep_bits < TORUS_BITS { (1u64 << rep_bits) - 1 } else { u64::MAX },
            digit_mask: (1u64 << self.base_log) - 1,
            half: 1u64 << (self.base_log - 1),
        }
    }

    /// Recomposes digits back into a torus element:
    /// `Σ d_i · q / B^i`. Inverse of [`Self::decompose`] up to the
    /// rounding step.
    ///
    /// # Panics
    ///
    /// Panics if `digits.len() != self.level`.
    pub fn recompose(&self, digits: &[i64]) -> u64 {
        assert_eq!(digits.len(), self.level, "digit buffer length mismatch");
        let mut acc = 0u64;
        for (i, &d) in digits.iter().enumerate() {
            acc = acc.wrapping_add((d as u64).wrapping_mul(self.gadget_scale(i + 1)));
        }
        acc
    }

    /// Decomposes every coefficient of a polynomial, producing one
    /// digit-polynomial per level (level-major layout, the order in
    /// which the Strix decomposer unit emits its output stream).
    pub fn decompose_polynomial(&self, poly: &TorusPolynomial) -> Vec<Vec<i64>> {
        let n = poly.size();
        let mut levels = vec![vec![0i64; n]; self.level];
        let mut digits = vec![0i64; self.level];
        let dec = self.decomposer();
        for (j, &c) in poly.coeffs().iter().enumerate() {
            dec.decompose_into(c, &mut digits);
            for (lvl, &d) in digits.iter().enumerate() {
                levels[lvl][j] = d;
            }
        }
        levels
    }

    /// As [`Self::decompose_polynomial`], writing into a flat
    /// caller-provided buffer of `level · N` digits (level-major:
    /// `levels[lvl·N + j]` is digit `lvl` of coefficient `j`). This is
    /// the allocation-free form the blind-rotation hot path uses with a
    /// per-thread [`crate::scratch::PbsScratch`].
    ///
    /// # Panics
    ///
    /// Panics if `levels.len() != level · N` or
    /// `digits.len() != level`.
    pub fn decompose_polynomial_into(
        &self,
        poly: &TorusPolynomial,
        levels: &mut [i64],
        digits: &mut [i64],
    ) {
        let n = poly.size();
        assert_eq!(levels.len(), self.level * n, "digit level buffer length mismatch");
        let dec = self.decomposer();
        for (j, &c) in poly.coeffs().iter().enumerate() {
            dec.decompose_into(c, digits);
            for (lvl, &d) in digits.iter().enumerate() {
                levels[lvl * n + j] = d;
            }
        }
    }

    /// Level-major polynomial decomposition over a caller-provided
    /// extraction-state buffer — the lane-parallel form of
    /// [`Self::decompose_polynomial_into`] used by the CMUX hot path.
    ///
    /// Coefficients decompose independently of one another (the carry
    /// chain runs across *levels*, not coefficients), so interchanging
    /// the loops — level outer, coefficient inner — turns every pass
    /// into straight-line u64 slice arithmetic (mask, shift, compare,
    /// balance) that autovectorises across coefficients, where the
    /// coefficient-outer form serialises on one word at a time. The
    /// per-coefficient operations are exactly the same, so the digits
    /// are **bit-identical** to [`Self::decompose_polynomial_into`]
    /// (pinned by `flat_polynomial_decomposition_matches_nested`).
    ///
    /// # Panics
    ///
    /// Panics if `levels.len() != level · N` or `state.len() != N`.
    pub fn decompose_polynomial_levels(
        &self,
        poly: &TorusPolynomial,
        levels: &mut [i64],
        state: &mut [u64],
    ) {
        let n = poly.size();
        assert_eq!(levels.len(), self.level * n, "digit level buffer length mismatch");
        assert_eq!(state.len(), n, "decomposition state buffer length mismatch");
        let dec = self.decomposer();
        // Rounding step for every coefficient (one vectorisable pass).
        if dec.drop == 0 {
            state.copy_from_slice(poly.coeffs());
        } else {
            for (s, &c) in state.iter_mut().zip(poly.coeffs()) {
                let carry = (c >> (dec.drop - 1)) & 1;
                *s = ((c >> dec.drop).wrapping_add(carry)) & dec.state_mask;
            }
        }
        // Extraction, least-significant level first, all coefficients
        // per level: same balance-and-carry arithmetic as the scalar
        // loop, lane-parallel across the polynomial.
        for lvl in (0..self.level).rev() {
            let out = &mut levels[lvl * n..(lvl + 1) * n];
            for (d, s) in out.iter_mut().zip(state.iter_mut()) {
                let raw = *s & dec.digit_mask;
                *s >>= dec.base_log;
                let balance = u64::from(raw >= dec.half);
                *d = raw as i64 - ((balance << dec.base_log) as i64);
                *s = s.wrapping_add(balance);
            }
        }
    }
}

/// Hoisted-constant signed decomposer: the shifts, masks and balancing
/// threshold of [`DecompositionParams::decompose_into`] derived once,
/// so hot loops that decompose thousands of elements per operation
/// (keyswitching, the CMUX's polynomial decomposition) re-derive
/// nothing per element. Build with [`DecompositionParams::decomposer`].
///
/// Bit-identical to the parameter-level entry points — they delegate
/// here.
#[derive(Clone, Copy, Debug)]
pub struct Decomposer {
    base_log: u32,
    level: usize,
    /// Bits discarded by the rounding step (`64 − base_log·level`).
    drop: u32,
    /// Mask keeping the represented bits of the extraction state.
    state_mask: u64,
    /// Mask extracting one `base_log`-bit digit.
    digit_mask: u64,
    half: u64,
}

impl Decomposer {
    /// Decomposes `a` into `level` balanced signed digits,
    /// most-significant level first — the rounding step (carry from
    /// the first dropped bit) fused with the shift down to the
    /// extraction state, then the balanced digit extraction.
    ///
    /// # Panics
    ///
    /// Panics if `digits.len()` differs from the level count.
    #[inline]
    pub fn decompose_into(&self, a: u64, digits: &mut [i64]) {
        assert_eq!(digits.len(), self.level, "digit buffer length mismatch");
        // Rounding step: adding the carry straight onto the shifted
        // value equals rounding at full width then shifting — the
        // re-masking folds away the carry out of the represented bits,
        // exactly as the shift-up/shift-down pair did.
        let mut state = if self.drop == 0 {
            a
        } else {
            let carry = (a >> (self.drop - 1)) & 1;
            ((a >> self.drop).wrapping_add(carry)) & self.state_mask
        };
        // Extract from the least-significant digit (level l) upwards so
        // carries propagate toward level 1; a carry out of level 1
        // represents a multiple of q and vanishes on the torus.
        //
        // Branchless balancing: digits of uniform torus values sit
        // above/below B/2 with equal probability, so a conditional here
        // mispredicts half the time across the k·N·l digits of every
        // CMUX/keyswitch — the flag-to-carry form costs two ALU ops
        // instead and computes exactly the same digits.
        for d in digits.iter_mut().rev() {
            let raw = state & self.digit_mask;
            state >>= self.base_log;
            let balance = u64::from(raw >= self.half);
            *d = raw as i64 - (balance << self.base_log) as i64;
            state = state.wrapping_add(balance);
        }
    }

    /// Number of levels this decomposer emits.
    #[inline]
    pub fn level(&self) -> usize {
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "exceeds the torus width")]
    fn rejects_oversized_decomposition() {
        DecompositionParams::new(33, 2);
    }

    #[test]
    fn closest_representable_rounds_both_ways() {
        let p = DecompositionParams::new(8, 2); // keeps top 16 bits
        let step = 1u64 << 48;
        assert_eq!(p.closest_representable(0), 0);
        assert_eq!(p.closest_representable(step), step);
        assert_eq!(p.closest_representable(step + step / 2 + 1), 2 * step);
        assert_eq!(p.closest_representable(step + step / 2 - 1), step);
        // Wrap at the top of the torus.
        assert_eq!(p.closest_representable(u64::MAX), 0);
    }

    #[test]
    fn digits_are_balanced() {
        let p = DecompositionParams::new(4, 3);
        let half = 8i64; // B/2 for B = 16
        for a in (0..10_000u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) {
            for &d in &p.decompose(a) {
                assert!(d >= -half && d <= half, "digit {d} for a={a}");
            }
        }
    }

    #[test]
    fn recompose_equals_closest_representable() {
        for (base_log, level) in [(10, 2), (7, 3), (4, 8), (2, 16), (16, 4), (32, 2)] {
            let p = DecompositionParams::new(base_log, level);
            for a in (0..2_000u64).map(|i| i.wrapping_mul(0xD1B5_4A32_D192_ED03)) {
                let digits = p.decompose(a);
                assert_eq!(
                    p.recompose(&digits),
                    p.closest_representable(a),
                    "a={a} base_log={base_log} level={level}"
                );
            }
        }
    }

    #[test]
    fn full_width_decomposition_is_exact() {
        // base_log·level = 64 means no rounding at all.
        let p = DecompositionParams::new(16, 4);
        for a in [0u64, 1, u64::MAX, 0x0123_4567_89AB_CDEF, 1 << 63] {
            assert_eq!(p.recompose(&p.decompose(a)), a);
        }
    }

    #[test]
    fn rounding_error_is_bounded() {
        let p = DecompositionParams::new(10, 2);
        let bound = 1u64 << (64 - 20 - 1); // q / (2 B^l)
        for a in (0..5_000u64).map(|i| i.wrapping_mul(0xA076_1D64_78BD_642F)) {
            let r = p.closest_representable(a);
            let err = (a.wrapping_sub(r) as i64).unsigned_abs();
            assert!(err <= bound, "a={a} err={err}");
        }
    }

    #[test]
    fn gadget_scales_decrease_geometrically() {
        let p = DecompositionParams::new(10, 2);
        assert_eq!(p.gadget_scale(1), 1 << 54);
        assert_eq!(p.gadget_scale(2), 1 << 44);
    }

    #[test]
    fn polynomial_decomposition_is_coefficientwise() {
        let p = DecompositionParams::new(6, 3);
        let poly = TorusPolynomial::from_coeffs(vec![0, u64::MAX, 1 << 63, 0x0123_4567_89AB_CDEF]);
        let levels = p.decompose_polynomial(&poly);
        assert_eq!(levels.len(), 3);
        for (j, &c) in poly.coeffs().iter().enumerate() {
            let per_coeff = p.decompose(c);
            for lvl in 0..3 {
                assert_eq!(levels[lvl][j], per_coeff[lvl]);
            }
        }
    }

    #[test]
    fn flat_polynomial_decomposition_matches_nested() {
        let p = DecompositionParams::new(6, 3);
        let poly = TorusPolynomial::from_coeffs(vec![0, u64::MAX, 1 << 63, 0x0123_4567_89AB_CDEF]);
        let nested = p.decompose_polynomial(&poly);
        let n = poly.size();
        let mut flat = vec![0i64; p.level * n];
        let mut digits = vec![0i64; p.level];
        p.decompose_polynomial_into(&poly, &mut flat, &mut digits);
        for (lvl, level) in nested.iter().enumerate() {
            assert_eq!(&flat[lvl * n..(lvl + 1) * n], level.as_slice());
        }
    }

    #[test]
    fn level_major_decomposition_is_bit_identical_to_coefficient_major() {
        // Includes a full-width decomposition (drop == 0) and shapes
        // with long carry chains.
        for (base_log, level) in [(6u32, 3usize), (10, 2), (7, 3), (16, 4), (2, 16)] {
            let p = DecompositionParams::new(base_log, level);
            let n = 64;
            let coeffs: Vec<u64> =
                (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
            let poly = TorusPolynomial::from_coeffs(coeffs);
            let mut flat = vec![0i64; level * n];
            let mut digits = vec![0i64; level];
            p.decompose_polynomial_into(&poly, &mut flat, &mut digits);
            let mut lane = vec![0i64; level * n];
            let mut state = vec![0u64; n];
            p.decompose_polynomial_levels(&poly, &mut lane, &mut state);
            assert_eq!(lane, flat, "base_log={base_log} level={level}");
        }
    }

    #[test]
    fn known_example_base_16() {
        // a = 0.5 on the torus = 2^63: digit 1 at level 1 should be -8
        // (since 8 >= B/2 = 8 triggers balancing: 8 - 16 = -8 with a
        // carry that wraps off the torus).
        let p = DecompositionParams::new(4, 1);
        let digits = p.decompose(1u64 << 63);
        assert_eq!(digits, vec![-8]);
        // Reconstruction: -8 · 2^60 = -2^63 ≡ 2^63 (mod 2^64). ✓
        assert_eq!(p.recompose(&digits), 1u64 << 63);
    }
}
