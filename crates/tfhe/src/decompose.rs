//! Signed gadget decomposition (Algorithm 1's `Decompose`, Eq. (3)).
//!
//! A torus element `a` is approximated by `l` balanced signed digits
//! `d_1 … d_l` with `|d_i| ≤ B/2` such that
//!
//! ```text
//! a ≈ Σ_{i=1}^{l} d_i · q / B^i,   error ≤ q / (2 B^l)
//! ```
//!
//! matching the paper's Eq. (3). Following §V-B, the implementation is
//! multiplier-free — a *rounding step* (mask the contributing bits, add
//! the carry from the first dropped bit) followed by an *extraction step*
//! (mask each β-bit digit, balance it against B/2 with a carry into the
//! next digit) — which is exactly the datapath of the Strix decomposer
//! unit and lets the hardware model in `strix-core` reuse this code as
//! its golden reference.

use serde::{Deserialize, Serialize};

use crate::poly::TorusPolynomial;
use crate::torus::TORUS_BITS;

/// Decomposition parameters: base `B = 2^base_log` and level count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DecompositionParams {
    /// log2 of the decomposition base `B`.
    pub base_log: u32,
    /// Number of levels `l`.
    pub level: usize,
}

impl DecompositionParams {
    /// Creates decomposition parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < base_log · level <= 64` — the digits must
    /// address a non-empty slice of the torus word.
    pub fn new(base_log: u32, level: usize) -> Self {
        assert!(base_log > 0 && level > 0, "decomposition must be non-trivial");
        assert!(
            base_log as usize * level <= TORUS_BITS as usize,
            "decomposition ({base_log} bits x {level} levels) exceeds the torus width"
        );
        Self { base_log, level }
    }

    /// Number of bits retained by the rounding step: `base_log · level`.
    #[inline]
    pub fn represented_bits(&self) -> u32 {
        self.base_log * self.level as u32
    }

    /// The gadget scale of level `i` (1-indexed): `q / B^i` as a torus
    /// element, i.e. `2^(64 - base_log·i)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is 0 or exceeds the level count.
    #[inline]
    pub fn gadget_scale(&self, i: usize) -> u64 {
        assert!(i >= 1 && i <= self.level, "gadget level {i} out of range");
        1u64 << (TORUS_BITS - self.base_log * i as u32)
    }

    /// Rounds `a` to the closest torus element representable by the
    /// gadget, i.e. the closest multiple of `q / B^l` (§V-B rounding
    /// step).
    #[inline]
    pub fn closest_representable(&self, a: u64) -> u64 {
        let drop = TORUS_BITS - self.represented_bits();
        if drop == 0 {
            return a;
        }
        // Add the carry from the first dropped bit, then clear the
        // dropped bits. Overflow wraps, which is correct on the torus.
        let carry = (a >> (drop - 1)) & 1;
        ((a >> drop).wrapping_add(carry)) << drop
    }

    /// Decomposes a torus element into `level` balanced signed digits,
    /// most-significant level first (`digits[0]` scales by `q/B`).
    ///
    /// Digits satisfy `-B/2 <= d < B/2` except that a chain of carries
    /// may produce `d = B/2` at the most significant level; either way
    /// `|d| <= B/2` holds, the bound used by every noise analysis.
    pub fn decompose(&self, a: u64) -> Vec<i64> {
        let mut digits = vec![0i64; self.level];
        self.decompose_into(a, &mut digits);
        digits
    }

    /// As [`Self::decompose`], writing into a caller-provided buffer
    /// (hot path of the blind rotation).
    ///
    /// # Panics
    ///
    /// Panics if `digits.len() != self.level`.
    pub fn decompose_into(&self, a: u64, digits: &mut [i64]) {
        assert_eq!(digits.len(), self.level, "digit buffer length mismatch");
        let rep_bits = self.represented_bits();
        let base = 1u64 << self.base_log;
        let half = base >> 1;
        // Extraction state: the rounded value, shifted down to an
        // integer of `rep_bits` bits (extraction step input).
        let mut state = self.closest_representable(a) >> (TORUS_BITS - rep_bits);
        if rep_bits < TORUS_BITS {
            state &= (1u64 << rep_bits) - 1;
        }
        // Extract from the least-significant digit (level l) upwards so
        // carries propagate toward level 1; a carry out of level 1
        // represents a multiple of q and vanishes on the torus.
        for lvl in (0..self.level).rev() {
            let raw = state & (base - 1);
            state >>= self.base_log;
            if raw >= half {
                digits[lvl] = raw as i64 - base as i64;
                state = state.wrapping_add(1);
            } else {
                digits[lvl] = raw as i64;
            }
        }
    }

    /// Recomposes digits back into a torus element:
    /// `Σ d_i · q / B^i`. Inverse of [`Self::decompose`] up to the
    /// rounding step.
    ///
    /// # Panics
    ///
    /// Panics if `digits.len() != self.level`.
    pub fn recompose(&self, digits: &[i64]) -> u64 {
        assert_eq!(digits.len(), self.level, "digit buffer length mismatch");
        let mut acc = 0u64;
        for (i, &d) in digits.iter().enumerate() {
            acc = acc.wrapping_add((d as u64).wrapping_mul(self.gadget_scale(i + 1)));
        }
        acc
    }

    /// Decomposes every coefficient of a polynomial, producing one
    /// digit-polynomial per level (level-major layout, the order in
    /// which the Strix decomposer unit emits its output stream).
    pub fn decompose_polynomial(&self, poly: &TorusPolynomial) -> Vec<Vec<i64>> {
        let n = poly.size();
        let mut levels = vec![vec![0i64; n]; self.level];
        let mut digits = vec![0i64; self.level];
        for (j, &c) in poly.coeffs().iter().enumerate() {
            self.decompose_into(c, &mut digits);
            for (lvl, &d) in digits.iter().enumerate() {
                levels[lvl][j] = d;
            }
        }
        levels
    }

    /// As [`Self::decompose_polynomial`], writing into a flat
    /// caller-provided buffer of `level · N` digits (level-major:
    /// `levels[lvl·N + j]` is digit `lvl` of coefficient `j`). This is
    /// the allocation-free form the blind-rotation hot path uses with a
    /// per-thread [`crate::scratch::PbsScratch`].
    ///
    /// # Panics
    ///
    /// Panics if `levels.len() != level · N` or
    /// `digits.len() != level`.
    pub fn decompose_polynomial_into(
        &self,
        poly: &TorusPolynomial,
        levels: &mut [i64],
        digits: &mut [i64],
    ) {
        let n = poly.size();
        assert_eq!(levels.len(), self.level * n, "digit level buffer length mismatch");
        for (j, &c) in poly.coeffs().iter().enumerate() {
            self.decompose_into(c, digits);
            for (lvl, &d) in digits.iter().enumerate() {
                levels[lvl * n + j] = d;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "exceeds the torus width")]
    fn rejects_oversized_decomposition() {
        DecompositionParams::new(33, 2);
    }

    #[test]
    fn closest_representable_rounds_both_ways() {
        let p = DecompositionParams::new(8, 2); // keeps top 16 bits
        let step = 1u64 << 48;
        assert_eq!(p.closest_representable(0), 0);
        assert_eq!(p.closest_representable(step), step);
        assert_eq!(p.closest_representable(step + step / 2 + 1), 2 * step);
        assert_eq!(p.closest_representable(step + step / 2 - 1), step);
        // Wrap at the top of the torus.
        assert_eq!(p.closest_representable(u64::MAX), 0);
    }

    #[test]
    fn digits_are_balanced() {
        let p = DecompositionParams::new(4, 3);
        let half = 8i64; // B/2 for B = 16
        for a in (0..10_000u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) {
            for &d in &p.decompose(a) {
                assert!(d >= -half && d <= half, "digit {d} for a={a}");
            }
        }
    }

    #[test]
    fn recompose_equals_closest_representable() {
        for (base_log, level) in [(10, 2), (7, 3), (4, 8), (2, 16), (16, 4), (32, 2)] {
            let p = DecompositionParams::new(base_log, level);
            for a in (0..2_000u64).map(|i| i.wrapping_mul(0xD1B5_4A32_D192_ED03)) {
                let digits = p.decompose(a);
                assert_eq!(
                    p.recompose(&digits),
                    p.closest_representable(a),
                    "a={a} base_log={base_log} level={level}"
                );
            }
        }
    }

    #[test]
    fn full_width_decomposition_is_exact() {
        // base_log·level = 64 means no rounding at all.
        let p = DecompositionParams::new(16, 4);
        for a in [0u64, 1, u64::MAX, 0x0123_4567_89AB_CDEF, 1 << 63] {
            assert_eq!(p.recompose(&p.decompose(a)), a);
        }
    }

    #[test]
    fn rounding_error_is_bounded() {
        let p = DecompositionParams::new(10, 2);
        let bound = 1u64 << (64 - 20 - 1); // q / (2 B^l)
        for a in (0..5_000u64).map(|i| i.wrapping_mul(0xA076_1D64_78BD_642F)) {
            let r = p.closest_representable(a);
            let err = (a.wrapping_sub(r) as i64).unsigned_abs();
            assert!(err <= bound, "a={a} err={err}");
        }
    }

    #[test]
    fn gadget_scales_decrease_geometrically() {
        let p = DecompositionParams::new(10, 2);
        assert_eq!(p.gadget_scale(1), 1 << 54);
        assert_eq!(p.gadget_scale(2), 1 << 44);
    }

    #[test]
    fn polynomial_decomposition_is_coefficientwise() {
        let p = DecompositionParams::new(6, 3);
        let poly = TorusPolynomial::from_coeffs(vec![0, u64::MAX, 1 << 63, 0x0123_4567_89AB_CDEF]);
        let levels = p.decompose_polynomial(&poly);
        assert_eq!(levels.len(), 3);
        for (j, &c) in poly.coeffs().iter().enumerate() {
            let per_coeff = p.decompose(c);
            for lvl in 0..3 {
                assert_eq!(levels[lvl][j], per_coeff[lvl]);
            }
        }
    }

    #[test]
    fn flat_polynomial_decomposition_matches_nested() {
        let p = DecompositionParams::new(6, 3);
        let poly = TorusPolynomial::from_coeffs(vec![0, u64::MAX, 1 << 63, 0x0123_4567_89AB_CDEF]);
        let nested = p.decompose_polynomial(&poly);
        let n = poly.size();
        let mut flat = vec![0i64; p.level * n];
        let mut digits = vec![0i64; p.level];
        p.decompose_polynomial_into(&poly, &mut flat, &mut digits);
        for (lvl, level) in nested.iter().enumerate() {
            assert_eq!(&flat[lvl * n..(lvl + 1) * n], level.as_slice());
        }
    }

    #[test]
    fn known_example_base_16() {
        // a = 0.5 on the torus = 2^63: digit 1 at level 1 should be -8
        // (since 8 >= B/2 = 8 triggers balancing: 8 - 16 = -8 with a
        // carry that wraps off the torus).
        let p = DecompositionParams::new(4, 1);
        let digits = p.decompose(1u64 << 63);
        assert_eq!(digits, vec![-8]);
        // Reconstruction: -8 · 2^60 = -2^63 ≡ 2^63 (mod 2^64). ✓
        assert_eq!(p.recompose(&digits), 1u64 << 63);
    }
}
