//! Torus polynomials in `T_q[X]/(X^N + 1)`.
//!
//! These are the rows of the GLWE test-vector matrix the Strix rotator
//! unit streams through its lanes. Negacyclic rotation (`X^a ·`),
//! addition and subtraction are implemented directly; products go
//! through [`strix_fft`].

use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

/// A polynomial with `u64` torus coefficients, reduced mod `X^N + 1`.
///
/// # Example
///
/// ```
/// use strix_tfhe::poly::TorusPolynomial;
///
/// let p = TorusPolynomial::from_coeffs(vec![1, 2, 3, 4]);
/// // X · p wraps the top coefficient around with a sign flip.
/// let q = p.rotate_right(1);
/// assert_eq!(q.coeffs(), &[4u64.wrapping_neg(), 1, 2, 3]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TorusPolynomial {
    coeffs: Vec<u64>,
}

impl TorusPolynomial {
    /// The zero polynomial of the given size.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a power of two >= 2.
    pub fn zero(size: usize) -> Self {
        assert!(size.is_power_of_two() && size >= 2, "polynomial size must be a power of two >= 2");
        Self { coeffs: vec![0; size] }
    }

    /// Builds a polynomial from its coefficient vector.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two >= 2.
    pub fn from_coeffs(coeffs: Vec<u64>) -> Self {
        assert!(
            coeffs.len().is_power_of_two() && coeffs.len() >= 2,
            "polynomial size must be a power of two >= 2"
        );
        Self { coeffs }
    }

    /// Constant polynomial `c` (all other coefficients zero).
    pub fn constant(size: usize, c: u64) -> Self {
        let mut p = Self::zero(size);
        p.coeffs[0] = c;
        p
    }

    /// Number of coefficients `N`.
    #[inline]
    pub fn size(&self) -> usize {
        self.coeffs.len()
    }

    /// Borrow of the coefficient slice.
    #[inline]
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Mutable borrow of the coefficient slice.
    #[inline]
    pub fn coeffs_mut(&mut self) -> &mut [u64] {
        &mut self.coeffs
    }

    /// Consumes the polynomial, returning its coefficients.
    #[inline]
    pub fn into_coeffs(self) -> Vec<u64> {
        self.coeffs
    }

    /// In-place wrapping addition: `self += other`.
    ///
    /// # Panics
    ///
    /// Panics if the sizes differ.
    pub fn add_assign(&mut self, other: &TorusPolynomial) {
        assert_eq!(self.size(), other.size(), "polynomial size mismatch");
        for (a, b) in self.coeffs.iter_mut().zip(&other.coeffs) {
            *a = a.wrapping_add(*b);
        }
    }

    /// In-place wrapping subtraction: `self -= other`.
    ///
    /// # Panics
    ///
    /// Panics if the sizes differ.
    pub fn sub_assign(&mut self, other: &TorusPolynomial) {
        assert_eq!(self.size(), other.size(), "polynomial size mismatch");
        for (a, b) in self.coeffs.iter_mut().zip(&other.coeffs) {
            *a = a.wrapping_sub(*b);
        }
    }

    /// In-place negation.
    pub fn negate(&mut self) {
        for a in &mut self.coeffs {
            *a = a.wrapping_neg();
        }
    }

    /// Returns `X^amount · self` for `amount ∈ [0, 2N)` — the paper's
    /// `Rotate('Right', tv, c[i])`.
    ///
    /// # Panics
    ///
    /// Panics if `amount >= 2N`.
    pub fn rotate_right(&self, amount: usize) -> TorusPolynomial {
        TorusPolynomial { coeffs: strix_fft::reference::rotate_right(&self.coeffs, amount) }
    }

    /// Returns `X^{-amount} · self` for `amount ∈ [0, 2N)` — the paper's
    /// `Rotate('left', tv, c[n])`.
    ///
    /// # Panics
    ///
    /// Panics if `amount >= 2N`.
    pub fn rotate_left(&self, amount: usize) -> TorusPolynomial {
        TorusPolynomial { coeffs: strix_fft::reference::rotate_left(&self.coeffs, amount) }
    }

    /// As [`Self::rotate_right`], writing into a caller-provided
    /// polynomial — the allocation-free form used inside the CMUX loop.
    ///
    /// # Panics
    ///
    /// Panics if `amount >= 2N` or the sizes differ.
    pub fn rotate_right_into(&self, amount: usize, out: &mut TorusPolynomial) {
        strix_fft::reference::rotate_right_into(&self.coeffs, amount, &mut out.coeffs);
    }
}

impl Index<usize> for TorusPolynomial {
    type Output = u64;
    #[inline]
    fn index(&self, i: usize) -> &u64 {
        &self.coeffs[i]
    }
}

impl IndexMut<usize> for TorusPolynomial {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut u64 {
        &mut self.coeffs[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_constant_constructors() {
        let z = TorusPolynomial::zero(8);
        assert_eq!(z.size(), 8);
        assert!(z.coeffs().iter().all(|&c| c == 0));
        let c = TorusPolynomial::constant(4, 7);
        assert_eq!(c.coeffs(), &[7, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        TorusPolynomial::zero(6);
    }

    #[test]
    fn add_sub_round_trip() {
        let mut a = TorusPolynomial::from_coeffs(vec![u64::MAX, 1, 2, 3]);
        let b = TorusPolynomial::from_coeffs(vec![5, 6, 7, 8]);
        let orig = a.clone();
        a.add_assign(&b);
        assert_eq!(a[0], 4); // wrapped
        a.sub_assign(&b);
        assert_eq!(a, orig);
    }

    #[test]
    fn negate_is_additive_inverse() {
        let mut a = TorusPolynomial::from_coeffs(vec![3, u64::MAX, 0, 9]);
        let b = a.clone();
        a.negate();
        a.add_assign(&b);
        assert!(a.coeffs().iter().all(|&c| c == 0));
    }

    #[test]
    fn rotations_compose_to_identity() {
        let p = TorusPolynomial::from_coeffs((1..=8u64).collect());
        for amount in 0..16 {
            assert_eq!(p.rotate_right(amount).rotate_left(amount), p, "amount {amount}");
        }
    }

    #[test]
    fn rotate_by_two_n_periodicity() {
        // X^{2N} = 1, so rotate by N twice = identity (through negation).
        let p = TorusPolynomial::from_coeffs(vec![1, 2, 3, 4]);
        let once = p.rotate_right(4);
        assert_eq!(
            once.coeffs(),
            &[1u64.wrapping_neg(), 2u64.wrapping_neg(), 3u64.wrapping_neg(), 4u64.wrapping_neg()]
        );
        let twice = once.rotate_right(4);
        assert_eq!(twice, p);
    }

    #[test]
    fn indexing_reads_and_writes() {
        let mut p = TorusPolynomial::zero(4);
        p[2] = 42;
        assert_eq!(p[2], 42);
    }
}
