//! Reproducible randomness for key generation, encryption and noise.
//!
//! Gaussian noise is sampled with the Box–Muller transform over the
//! seedable ChaCha-based [`rand::rngs::StdRng`], keeping the whole
//! pipeline deterministic under a fixed seed — a requirement for the
//! benchmark harness's reproducibility.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Source of all randomness used by the scheme.
///
/// # Example
///
/// ```
/// use strix_tfhe::rng::NoiseSampler;
///
/// let mut a = NoiseSampler::from_seed(7);
/// let mut b = NoiseSampler::from_seed(7);
/// assert_eq!(a.uniform_torus(), b.uniform_torus());
/// ```
#[derive(Clone, Debug)]
pub struct NoiseSampler {
    rng: StdRng,
    /// Cached second Box–Muller output.
    spare_gaussian: Option<f64>,
}

impl NoiseSampler {
    /// Creates a sampler from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), spare_gaussian: None }
    }

    /// Creates a sampler seeded from the operating system.
    pub fn from_entropy() -> Self {
        Self { rng: StdRng::from_entropy(), spare_gaussian: None }
    }

    /// A uniformly random torus element.
    #[inline]
    pub fn uniform_torus(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A uniformly random binary secret-key bit.
    #[inline]
    pub fn binary(&mut self) -> u64 {
        self.rng.next_u64() & 1
    }

    /// A standard-normal sample via Box–Muller.
    pub fn standard_gaussian(&mut self) -> f64 {
        if let Some(z) = self.spare_gaussian.take() {
            return z;
        }
        // Draw u1 in (0, 1] to keep ln(u1) finite.
        let u1: f64 = 1.0 - self.rng.gen::<f64>();
        let u2: f64 = self.rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_gaussian = Some(r * theta.sin());
        r * theta.cos()
    }

    /// A Gaussian torus error with standard deviation `std_rel` given
    /// *relative to the torus* (i.e. in units of 1), as TFHE parameter
    /// sets specify it.
    ///
    /// The sample is rounded to the nearest torus element.
    #[inline]
    pub fn gaussian_torus(&mut self, std_rel: f64) -> u64 {
        let noise = self.standard_gaussian() * std_rel * 2.0f64.powi(64);
        crate::torus::f64_to_torus(noise)
    }

    /// Fills `out` with uniform torus elements.
    pub fn fill_uniform(&mut self, out: &mut [u64]) {
        for slot in out {
            *slot = self.rng.next_u64();
        }
    }

    /// Fills `out` with binary values.
    pub fn fill_binary(&mut self, out: &mut [u64]) {
        for slot in out {
            *slot = self.rng.next_u64() & 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = NoiseSampler::from_seed(123);
        let mut b = NoiseSampler::from_seed(123);
        for _ in 0..32 {
            assert_eq!(a.uniform_torus(), b.uniform_torus());
            assert_eq!(a.standard_gaussian(), b.standard_gaussian());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = NoiseSampler::from_seed(1);
        let mut b = NoiseSampler::from_seed(2);
        let same = (0..16).filter(|_| a.uniform_torus() == b.uniform_torus()).count();
        assert!(same < 2);
    }

    #[test]
    fn binary_is_zero_or_one() {
        let mut s = NoiseSampler::from_seed(9);
        for _ in 0..256 {
            let b = s.binary();
            assert!(b == 0 || b == 1);
        }
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut s = NoiseSampler::from_seed(31415);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| s.standard_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn gaussian_torus_scales_with_std() {
        let mut s = NoiseSampler::from_seed(7);
        let std_rel = 2.0f64.powi(-20);
        let n = 10_000;
        let mut acc = 0.0f64;
        for _ in 0..n {
            let e = s.gaussian_torus(std_rel) as i64 as f64 / 2.0f64.powi(64);
            acc += e * e;
        }
        let measured_std = (acc / n as f64).sqrt();
        let ratio = measured_std / std_rel;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fill_helpers_fill_everything() {
        let mut s = NoiseSampler::from_seed(5);
        let mut buf = [0u64; 64];
        s.fill_uniform(&mut buf);
        assert!(buf.iter().any(|&x| x != 0));
        s.fill_binary(&mut buf);
        assert!(buf.iter().all(|&x| x <= 1));
    }
}
