//! Reproducible randomness for key generation, encryption and noise.
//!
//! Gaussian noise is sampled with the Box–Muller transform over the
//! seedable ChaCha-based [`rand::rngs::StdRng`], keeping the whole
//! pipeline deterministic under a fixed seed — a requirement for the
//! benchmark harness's reproducibility.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Source of all randomness used by the scheme.
///
/// # Example
///
/// ```
/// use strix_tfhe::rng::NoiseSampler;
///
/// let mut a = NoiseSampler::from_seed(7);
/// let mut b = NoiseSampler::from_seed(7);
/// assert_eq!(a.uniform_torus(), b.uniform_torus());
/// ```
#[derive(Clone, Debug)]
pub struct NoiseSampler {
    rng: StdRng,
    /// Cached second Box–Muller output.
    spare_gaussian: Option<f64>,
}

/// Derives an independent sub-seed from a common-reference seed and a
/// component label via two rounds of the splitmix64 finalizer.
///
/// Seeded key transport expands one 64-bit CRS seed into several mask
/// streams (bootstrap key, multi-bit key, keyswitch key). Each stream
/// must be reproducible in isolation so expansion can regenerate the
/// public mask material in the exact draw order used at generation
/// time, regardless of which components the parameter set enables.
pub fn derive_seed(seed: u64, label: u64) -> u64 {
    let mut z = seed ^ label.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for _ in 0..2 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
    }
    z
}

impl NoiseSampler {
    /// Creates a sampler from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), spare_gaussian: None }
    }

    /// Creates a sampler for one labelled component stream of a CRS seed.
    pub fn from_derived_seed(seed: u64, label: u64) -> Self {
        Self::from_seed(derive_seed(seed, label))
    }

    /// Creates a sampler seeded from the operating system.
    pub fn from_entropy() -> Self {
        Self { rng: StdRng::from_entropy(), spare_gaussian: None }
    }

    /// A uniformly random torus element.
    #[inline]
    pub fn uniform_torus(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A uniformly random binary secret-key bit.
    #[inline]
    pub fn binary(&mut self) -> u64 {
        self.rng.next_u64() & 1
    }

    /// A standard-normal sample via Box–Muller.
    pub fn standard_gaussian(&mut self) -> f64 {
        if let Some(z) = self.spare_gaussian.take() {
            return z;
        }
        // Draw u1 in (0, 1] to keep ln(u1) finite.
        let u1: f64 = 1.0 - self.rng.gen::<f64>();
        let u2: f64 = self.rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_gaussian = Some(r * theta.sin());
        r * theta.cos()
    }

    /// A Gaussian torus error with standard deviation `std_rel` given
    /// *relative to the torus* (i.e. in units of 1), as TFHE parameter
    /// sets specify it.
    ///
    /// The sample is rounded to the nearest torus element.
    #[inline]
    pub fn gaussian_torus(&mut self, std_rel: f64) -> u64 {
        let noise = self.standard_gaussian() * std_rel * 2.0f64.powi(64);
        crate::torus::f64_to_torus(noise)
    }

    /// Fills `out` with uniform torus elements.
    pub fn fill_uniform(&mut self, out: &mut [u64]) {
        for slot in out {
            *slot = self.rng.next_u64();
        }
    }

    /// Fills `out` with binary values.
    pub fn fill_binary(&mut self, out: &mut [u64]) {
        for slot in out {
            *slot = self.rng.next_u64() & 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = NoiseSampler::from_seed(123);
        let mut b = NoiseSampler::from_seed(123);
        for _ in 0..32 {
            assert_eq!(a.uniform_torus(), b.uniform_torus());
            assert_eq!(a.standard_gaussian(), b.standard_gaussian());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = NoiseSampler::from_seed(1);
        let mut b = NoiseSampler::from_seed(2);
        let same = (0..16).filter(|_| a.uniform_torus() == b.uniform_torus()).count();
        assert!(same < 2);
    }

    #[test]
    fn binary_is_zero_or_one() {
        let mut s = NoiseSampler::from_seed(9);
        for _ in 0..256 {
            let b = s.binary();
            assert!(b == 0 || b == 1);
        }
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut s = NoiseSampler::from_seed(31415);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| s.standard_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn gaussian_torus_scales_with_std() {
        let mut s = NoiseSampler::from_seed(7);
        let std_rel = 2.0f64.powi(-20);
        let n = 10_000;
        let mut acc = 0.0f64;
        for _ in 0..n {
            let e = s.gaussian_torus(std_rel) as i64 as f64 / 2.0f64.powi(64);
            acc += e * e;
        }
        let measured_std = (acc / n as f64).sqrt();
        let ratio = measured_std / std_rel;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn derived_seeds_are_deterministic_and_label_separated() {
        assert_eq!(derive_seed(42, 1), derive_seed(42, 1));
        assert_ne!(derive_seed(42, 1), derive_seed(42, 2));
        assert_ne!(derive_seed(42, 1), derive_seed(43, 1));
        // The derived stream must not collide with the raw seed stream.
        let mut raw = NoiseSampler::from_seed(42);
        let mut derived = NoiseSampler::from_derived_seed(42, 0);
        assert_ne!(raw.uniform_torus(), derived.uniform_torus());
    }

    #[test]
    fn fill_helpers_fill_everything() {
        let mut s = NoiseSampler::from_seed(5);
        let mut buf = [0u64; 64];
        s.fill_uniform(&mut buf);
        assert!(buf.iter().any(|&x| x != 0));
        s.fill_binary(&mut buf);
        assert!(buf.iter().all(|&x| x <= 1));
    }
}
