//! Error type for TFHE operations.

use std::error::Error;
use std::fmt;

/// Errors produced by homomorphic operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TfheError {
    /// Two ciphertexts (or a ciphertext and a key) come from incompatible
    /// parameter sets.
    ParameterMismatch {
        /// Description of the mismatching quantity.
        what: &'static str,
        /// Value on the left-hand side.
        left: usize,
        /// Value on the right-hand side.
        right: usize,
    },
    /// A message does not fit in the configured message space.
    MessageOutOfRange {
        /// The message that was supplied.
        message: u64,
        /// The exclusive upper bound of the message space.
        bound: u64,
    },
    /// The parameter set is structurally invalid (e.g. decomposition
    /// exceeds the torus width, or the LUT box size would be zero).
    InvalidParameters(&'static str),
}

impl fmt::Display for TfheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TfheError::ParameterMismatch { what, left, right } => {
                write!(f, "parameter mismatch on {what}: {left} vs {right}")
            }
            TfheError::MessageOutOfRange { message, bound } => {
                write!(f, "message {message} outside message space [0, {bound})")
            }
            TfheError::InvalidParameters(why) => write!(f, "invalid parameters: {why}"),
        }
    }
}

impl Error for TfheError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TfheError::ParameterMismatch { what: "lwe dimension", left: 500, right: 630 };
        assert_eq!(e.to_string(), "parameter mismatch on lwe dimension: 500 vs 630");
        let e = TfheError::MessageOutOfRange { message: 9, bound: 8 };
        assert_eq!(e.to_string(), "message 9 outside message space [0, 8)");
    }

    #[test]
    fn error_is_send_sync_static() {
        fn check<T: Send + Sync + 'static>() {}
        check::<TfheError>();
    }
}
