//! Keyswitching (Algorithm 2).
//!
//! After PBS the ciphertext lives under the extracted key of dimension
//! `k·N`. Keyswitching converts it back to the original `n`-dimension
//! key: each mask element is gadget-decomposed and the digits are
//! multiplied against the keyswitching key — a `k·N·l_k × (n+1)`
//! matrix–vector product over scalars, which is why the Strix keyswitch
//! cluster needs only the decomposer, VMA and accumulator units.

use crate::decompose::DecompositionParams;
use crate::lwe::{LweCiphertext, LweSecretKey};
use crate::params::TfheParameters;
use crate::profiler::{PbsStage, StageTimings};
use crate::rng::NoiseSampler;
use crate::TfheError;

/// The keyswitching key: for every input-key bit `s'_j` and level
/// `lvl`, an LWE encryption of `s'_j · q/B_ks^{lvl+1}` under the output
/// key.
#[derive(Clone, Debug)]
pub struct KeySwitchKey {
    /// `rows[j * l_k + lvl]`.
    rows: Vec<LweCiphertext>,
    decomp: DecompositionParams,
    input_dimension: usize,
    output_dimension: usize,
}

impl KeySwitchKey {
    /// Generates a keyswitching key from `from_key` (dimension `k·N`)
    /// to `to_key` (dimension `n`).
    pub fn generate(
        from_key: &LweSecretKey,
        to_key: &LweSecretKey,
        params: &TfheParameters,
        rng: &mut NoiseSampler,
    ) -> Self {
        let decomp = DecompositionParams::new(params.ks_base_log, params.ks_level);
        let mut rows = Vec::with_capacity(from_key.dimension() * decomp.level);
        for &bit in from_key.bits() {
            for lvl in 1..=decomp.level {
                let pt = bit.wrapping_mul(decomp.gadget_scale(lvl));
                rows.push(to_key.encrypt(pt, params.lwe_noise_std, rng));
            }
        }
        Self {
            rows,
            decomp,
            input_dimension: from_key.dimension(),
            output_dimension: to_key.dimension(),
        }
    }

    /// Seeded generation: masks come from the shared CRS stream `crs`,
    /// so transport only ships one body element per row — an `(n+1)×`
    /// compression of the keyswitching key.
    pub fn generate_seeded(
        from_key: &LweSecretKey,
        to_key: &LweSecretKey,
        params: &TfheParameters,
        noise_rng: &mut NoiseSampler,
        crs: &mut NoiseSampler,
    ) -> Self {
        let decomp = DecompositionParams::new(params.ks_base_log, params.ks_level);
        let n = to_key.dimension();
        let mut rows = Vec::with_capacity(from_key.dimension() * decomp.level);
        for &bit in from_key.bits() {
            for lvl in 1..=decomp.level {
                let pt = bit.wrapping_mul(decomp.gadget_scale(lvl));
                let mut mask = vec![0u64; n];
                crs.fill_uniform(&mut mask);
                rows.push(to_key.encrypt_with_mask(mask, pt, params.lwe_noise_std, noise_rng));
            }
        }
        Self {
            rows,
            decomp,
            input_dimension: from_key.dimension(),
            output_dimension: to_key.dimension(),
        }
    }

    /// Expansion half of seeded transport: regenerates the CRS masks in
    /// the draw order of [`Self::generate_seeded`] and attaches the
    /// stored body elements.
    ///
    /// # Panics
    ///
    /// Panics if the body count is not `input_dimension · l_k`
    /// (transport payload invariant).
    pub(crate) fn from_seeded_parts(
        bodies: &[u64],
        params: &TfheParameters,
        input_dimension: usize,
        output_dimension: usize,
        crs: &mut NoiseSampler,
    ) -> Self {
        let decomp = DecompositionParams::new(params.ks_base_log, params.ks_level);
        assert_eq!(bodies.len(), input_dimension * decomp.level, "seeded ksk row count");
        let rows = bodies
            .iter()
            .map(|&body| {
                let mut data = vec![0u64; output_dimension + 1];
                crs.fill_uniform(&mut data[..output_dimension]);
                data[output_dimension] = body;
                LweCiphertext::from_raw(data)
            })
            .collect();
        Self { rows, decomp, input_dimension, output_dimension }
    }

    /// The transport payload of a seeded key: one body element per row.
    pub(crate) fn bodies(&self) -> Vec<u64> {
        self.rows.iter().map(|r| r.body()).collect()
    }

    /// Input dimension (`k·N`).
    #[inline]
    pub fn input_dimension(&self) -> usize {
        self.input_dimension
    }

    /// Output dimension (`n`).
    #[inline]
    pub fn output_dimension(&self) -> usize {
        self.output_dimension
    }

    /// The decomposition used on input mask elements.
    #[inline]
    pub fn decomposition(&self) -> DecompositionParams {
        self.decomp
    }

    /// Key size in bytes (`k·N·l_k` ciphertexts of `n+1` words).
    pub fn byte_size(&self) -> usize {
        self.rows.len() * (self.output_dimension + 1) * 8
    }

    /// Switches `ct` (dimension `k·N`) to the output key (dimension `n`).
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] if `ct`'s dimension is
    /// not the key's input dimension.
    pub fn keyswitch(&self, ct: &LweCiphertext) -> Result<LweCiphertext, TfheError> {
        self.keyswitch_impl(ct, None, &mut vec![0i64; self.decomp.level])
    }

    /// Switches a whole batch, reusing one digit buffer across every
    /// ciphertext — the batched counterpart the runtime executor pairs
    /// with [`crate::bootstrap::BootstrapKey::bootstrap_batch`] when an
    /// epoch's PBS outputs all return to the original key. Outputs are
    /// in input order. Accepts owned or borrowed inputs
    /// (`&[LweCiphertext]` or `&[&LweCiphertext]`), so callers holding
    /// ciphertexts inside request structures can batch without cloning.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] if any input's
    /// dimension is not the key's input dimension.
    pub fn keyswitch_batch<C: AsRef<LweCiphertext>>(
        &self,
        cts: &[C],
    ) -> Result<Vec<LweCiphertext>, TfheError> {
        let mut digits = vec![0i64; self.decomp.level];
        cts.iter().map(|ct| self.keyswitch_impl(ct.as_ref(), None, &mut digits)).collect()
    }

    /// Parallel batched keyswitch: splits `cts` into `threads`
    /// contiguous shards and runs each through
    /// [`Self::keyswitch_batch`] on its own [`std::thread::scope`]
    /// worker (one digit buffer per shard), all sharing this key. The
    /// Algorithm-2 tail of an epoch thereby scales with the same
    /// thread budget as the blind rotation
    /// ([`crate::bootstrap::BootstrapKey::bootstrap_batch_parallel`]).
    ///
    /// Results come back **in input order** and are **bit-identical**
    /// to the sequential path — each keyswitch depends only on its own
    /// ciphertext, so sharding cannot change a single operation.
    ///
    /// `threads` is clamped to `[1, cts.len()]`; `threads <= 1` runs
    /// sequentially on the calling thread.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] if any input's
    /// dimension is not the key's input dimension (validated up front,
    /// before any thread is spawned).
    pub fn keyswitch_batch_parallel<C: AsRef<LweCiphertext> + Sync>(
        &self,
        cts: &[C],
        threads: usize,
    ) -> Result<Vec<LweCiphertext>, TfheError> {
        for ct in cts {
            let ct = ct.as_ref();
            if ct.dimension() != self.input_dimension {
                return Err(TfheError::ParameterMismatch {
                    what: "lwe dimension",
                    left: ct.dimension(),
                    right: self.input_dimension,
                });
            }
        }
        let threads = threads.max(1).min(cts.len());
        if threads <= 1 {
            return self.keyswitch_batch(cts);
        }
        // Balanced contiguous shards, mirroring the PBS sharding: the
        // first `cts % threads` shards take one extra ciphertext, and
        // contiguity preserves input order across the concatenation.
        let base = cts.len() / threads;
        let extra = cts.len() % threads;
        let shards: Vec<Result<Vec<LweCiphertext>, TfheError>> = std::thread::scope(|scope| {
            let mut start = 0;
            let handles: Vec<_> = (0..threads)
                .map(|i| {
                    let len = base + usize::from(i < extra);
                    let shard = &cts[start..start + len];
                    start += len;
                    scope.spawn(move || self.keyswitch_batch(shard))
                })
                .collect();
            handles
                .into_iter()
                // lint:allow(panic) a worker panic is propagated, not swallowed
                .map(|h| h.join().expect("keyswitch shard worker panicked"))
                .collect()
        });
        let mut out = Vec::with_capacity(cts.len());
        for shard in shards {
            out.extend(shard?);
        }
        Ok(out)
    }

    /// Profiled variant of [`Self::keyswitch`].
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on dimension mismatch.
    pub fn keyswitch_profiled(
        &self,
        ct: &LweCiphertext,
        timings: &mut StageTimings,
    ) -> Result<LweCiphertext, TfheError> {
        self.keyswitch_impl(ct, Some(timings), &mut vec![0i64; self.decomp.level])
    }

    fn keyswitch_impl(
        &self,
        ct: &LweCiphertext,
        timings: Option<&mut StageTimings>,
        digits: &mut [i64],
    ) -> Result<LweCiphertext, TfheError> {
        if ct.dimension() != self.input_dimension {
            return Err(TfheError::ParameterMismatch {
                what: "lwe dimension",
                left: ct.dimension(),
                right: self.input_dimension,
            });
        }
        let t0 = std::time::Instant::now();
        // Hoisted out of the k·N-element mask loop: the decomposition's
        // shift/mask constants (one `Decomposer` for the whole
        // ciphertext — and, via `keyswitch_batch`, the whole batch)
        // and the level stride into the key rows. The digit buffer is
        // caller-provided and fully overwritten per element, so it is
        // never re-zeroed.
        let decomposer = self.decomp.decomposer();
        let level = self.decomp.level;
        // o = (0, …, 0, b) − Σ_j Σ_lvl d_{j,lvl} · ksk[j][lvl]
        let mut out = LweCiphertext::trivial(self.output_dimension, ct.body());
        for (rows_j, &a) in self.rows.chunks_exact(level).zip(ct.mask()) {
            decomposer.decompose_into(a, digits);
            for (&d, row) in digits.iter().zip(rows_j) {
                if d == 0 {
                    continue;
                }
                // Fused multiply-subtract over the row (the keyswitch
                // cluster's VMA lane).
                let d = d as u64;
                for (o, &r) in out.raw_mut().iter_mut().zip(row.as_raw().iter()) {
                    *o = o.wrapping_sub(d.wrapping_mul(r));
                }
            }
        }
        if let Some(t) = timings {
            t.add(PbsStage::KeySwitch, t0.elapsed());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::torus::{decode_message, encode_fraction};

    fn fixture() -> (LweSecretKey, LweSecretKey, KeySwitchKey, NoiseSampler, TfheParameters) {
        let mut params = TfheParameters::testing_fast();
        params.ks_base_log = 4;
        params.ks_level = 8;
        let mut rng = NoiseSampler::from_seed(31337);
        let big = LweSecretKey::generate(256, &mut rng);
        let small = LweSecretKey::generate(params.lwe_dimension, &mut rng);
        let ksk = KeySwitchKey::generate(&big, &small, &params, &mut rng);
        (big, small, ksk, rng, params)
    }

    #[test]
    fn keyswitch_preserves_message() {
        let (big, small, ksk, mut rng, params) = fixture();
        for m in 0..8u64 {
            let pt = encode_fraction(m as i64, 3);
            let ct = big.encrypt(pt, params.lwe_noise_std, &mut rng);
            let switched = ksk.keyswitch(&ct).unwrap();
            assert_eq!(switched.dimension(), small.dimension());
            let phase = small.decrypt_phase(&switched).unwrap();
            assert_eq!(decode_message(phase, 3), m, "m={m}");
        }
    }

    #[test]
    fn keyswitch_is_linear() {
        let (big, small, ksk, mut rng, params) = fixture();
        let c1 = big.encrypt(encode_fraction(1, 3), params.lwe_noise_std, &mut rng);
        let c2 = big.encrypt(encode_fraction(2, 3), params.lwe_noise_std, &mut rng);
        let mut sum = c1.clone();
        sum.add_assign(&c2).unwrap();
        let switched_sum = ksk.keyswitch(&sum).unwrap();
        let phase = small.decrypt_phase(&switched_sum).unwrap();
        assert_eq!(decode_message(phase, 3), 3);
    }

    #[test]
    fn batched_keyswitch_matches_single_per_input() {
        let (big, _, ksk, mut rng, params) = fixture();
        let cts: Vec<LweCiphertext> = (0..5i64)
            .map(|m| big.encrypt(encode_fraction(m, 3), params.lwe_noise_std, &mut rng))
            .collect();
        let batched = ksk.keyswitch_batch(&cts).unwrap();
        for (ct, out) in cts.iter().zip(&batched) {
            assert_eq!(out, &ksk.keyswitch(ct).unwrap());
        }
        assert!(ksk.keyswitch_batch(&[] as &[LweCiphertext]).unwrap().is_empty());
        let bad = LweCiphertext::trivial(3, 0);
        assert!(ksk.keyswitch_batch(&[bad]).is_err());
    }

    #[test]
    fn parallel_keyswitch_is_bit_identical_to_sequential() {
        let (big, _, ksk, mut rng, params) = fixture();
        // 7 inputs: does not divide evenly by 2..6 threads.
        let cts: Vec<LweCiphertext> = (0..7i64)
            .map(|m| big.encrypt(encode_fraction(m % 8, 3), params.lwe_noise_std, &mut rng))
            .collect();
        let sequential = ksk.keyswitch_batch(&cts).unwrap();
        for threads in 1..=8 {
            let parallel = ksk.keyswitch_batch_parallel(&cts, threads).unwrap();
            assert_eq!(parallel, sequential, "threads={threads}");
        }
        // Degenerate thread counts are clamped, not errors.
        assert_eq!(ksk.keyswitch_batch_parallel(&cts, 0).unwrap(), sequential);
        assert_eq!(ksk.keyswitch_batch_parallel(&cts, 100).unwrap(), sequential);
        assert!(ksk.keyswitch_batch_parallel(&[] as &[LweCiphertext], 4).unwrap().is_empty());
        // Borrowed inputs batch without cloning and agree with owned.
        let refs: Vec<&LweCiphertext> = cts.iter().collect();
        assert_eq!(ksk.keyswitch_batch_parallel(&refs, 3).unwrap(), sequential);
    }

    #[test]
    fn parallel_keyswitch_rejects_mismatch_before_spawning() {
        let (big, _, ksk, mut rng, params) = fixture();
        let good = big.encrypt(0, params.lwe_noise_std, &mut rng);
        let bad = LweCiphertext::trivial(3, 0);
        assert!(ksk.keyswitch_batch_parallel(&[good, bad], 2).is_err());
    }

    #[test]
    fn dimensions_and_size() {
        let (_, _, ksk, _, params) = fixture();
        assert_eq!(ksk.input_dimension(), 256);
        assert_eq!(ksk.output_dimension(), params.lwe_dimension);
        assert_eq!(ksk.byte_size(), 256 * params.ks_level * (params.lwe_dimension + 1) * 8);
    }

    #[test]
    fn wrong_dimension_is_an_error() {
        let (_, _, ksk, _, _) = fixture();
        let ct = LweCiphertext::trivial(100, 0);
        assert!(matches!(
            ksk.keyswitch(&ct),
            Err(TfheError::ParameterMismatch { what: "lwe dimension", .. })
        ));
    }

    #[test]
    fn trivial_input_switches_exactly() {
        // A trivial ciphertext has zero mask: keyswitching must return
        // the body untouched (no decomposition work at all).
        let (_, small, ksk, _, _) = fixture();
        let pt = encode_fraction(5, 3);
        let ct = LweCiphertext::trivial(256, pt);
        let switched = ksk.keyswitch(&ct).unwrap();
        assert_eq!(small.decrypt_phase(&switched).unwrap(), pt);
    }

    #[test]
    fn profiled_keyswitch_records_time() {
        let (big, _, ksk, mut rng, params) = fixture();
        let ct = big.encrypt(0, params.lwe_noise_std, &mut rng);
        let mut t = StageTimings::new();
        let _ = ksk.keyswitch_profiled(&ct, &mut t).unwrap();
        assert!(t.total_for(PbsStage::KeySwitch) > std::time::Duration::ZERO);
    }
}
