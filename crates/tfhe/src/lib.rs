//! A from-scratch implementation of TFHE (Fully Homomorphic Encryption
//! over the Torus) with programmable bootstrapping.
//!
//! This crate is the cryptographic substrate of the Strix reproduction.
//! It implements every entity of the paper's §II-D data-structure
//! taxonomy — LWE ciphertexts, GLWE test-vectors, bootstrapping keys
//! (vectors of GGSW ciphertexts) and keyswitching keys — together with
//! the two algorithms of §II-E:
//!
//! * **Algorithm 1, Programmable Bootstrapping**: modulus switching,
//!   blind rotation (rotate-and-subtract, gadget decomposition and the
//!   FFT-based external product) and sample extraction
//!   ([`bootstrap`]).
//! * **Algorithm 2, Keyswitching**: scalar gadget decomposition followed
//!   by a vector–matrix product with the keyswitching key
//!   ([`keyswitch`]).
//!
//! On top of the scheme it provides the user-facing layers the paper's
//! workloads rely on: gate bootstrapping for boolean circuits
//! ([`boolean`]) and small-integer LUT evaluation via PBS
//! ([`shortint`]), used by the Zama Deep-NN benchmark for its ReLU
//! activations.
//!
//! # Quick start
//!
//! ```
//! use strix_tfhe::prelude::*;
//!
//! # fn main() -> Result<(), strix_tfhe::TfheError> {
//! let params = TfheParameters::testing_fast();
//! let (mut client, server) = generate_keys(&params, 42);
//!
//! let a = client.encrypt_bool(true);
//! let b = client.encrypt_bool(false);
//! let c = server.nand(&a, &b)?;
//! assert!(client.decrypt_bool(&c));
//! # Ok(())
//! # }
//! ```
//!
//! # Security
//!
//! Parameter sets mirror the paper's Table IV and the security levels it
//! claims (110/128 bit); they are intended for research and benchmarking,
//! not production use. Randomness is drawn from a seedable CSPRNG so
//! experiments are reproducible.

pub mod boolean;
pub mod bootstrap;
pub mod decompose;
mod error;
pub mod ggsw;
pub mod glwe;
pub mod integer;
pub mod keys;
pub mod keyswitch;
pub mod lwe;
pub mod noise;
pub mod params;
pub mod poly;
pub mod profiler;
pub mod rng;
pub mod scratch;
pub mod shortint;
pub mod torus;
pub mod unrolled;

pub use error::TfheError;
pub use keys::{generate_keys, ClientKey, SeededServerKey, ServerKey};
pub use params::{ParameterSet, PbsKernel, TfheParameters};
// Re-exported so downstream crates can force a kernel backend without
// depending on `strix-fft` directly.
pub use strix_fft::StrixFftBackend;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::boolean::BoolCiphertext;
    pub use crate::keys::{generate_keys, ClientKey, SeededServerKey, ServerKey};
    pub use crate::lwe::LweCiphertext;
    pub use crate::params::{ParameterSet, PbsKernel, TfheParameters};
    pub use crate::shortint::ShortintCiphertext;
    pub use crate::TfheError;
}
