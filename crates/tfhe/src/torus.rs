//! The discretised torus `T_q = (1/q)Z / Z` with `q = 2^64`.
//!
//! Torus elements are stored as `u64` with wrapping arithmetic: the
//! element `t` represents the real `t / 2^64 ∈ [0, 1)`. All TFHE noise
//! and message encodings live on this torus.

/// Number of bits in the torus representation (`q = 2^TORUS_BITS`).
pub const TORUS_BITS: u32 = 64;

/// Converts a real number (in torus units, i.e. multiples of `1/2^64`)
/// to the nearest torus element, reducing modulo 1.
///
/// Used to fold FFT outputs — which are large `f64` integers representing
/// values mod `2^64` — back onto the torus.
///
/// Values beyond 2^52 carry f64 rounding error of their own; that error
/// is part of the FFT noise budget, not of this reduction.
///
/// # Example
///
/// ```
/// use strix_tfhe::torus::f64_to_torus;
/// assert_eq!(f64_to_torus(3.0), 3);
/// assert_eq!(f64_to_torus(-1.0), u64::MAX);
/// // 4096 = one ulp at 2^64, so this sum is exactly representable:
/// assert_eq!(f64_to_torus(2.0_f64.powi(64) + 4096.0), 4096);
/// ```
#[inline]
pub fn f64_to_torus(x: f64) -> u64 {
    const TWO_64: f64 = 18446744073709551616.0; // 2^64
    let reduced = x - (x / TWO_64).round() * TWO_64;
    // reduced ∈ [-2^63, 2^63]; the boundary value saturates to i64::MAX,
    // a 1-ulp error absorbed by the noise term.
    reduced.round() as i64 as u64
}

/// Interprets a torus element as a *signed* real in `[-2^63, 2^63)`,
/// i.e. centred representative times `2^64`.
///
/// This is the representation in which bootstrapping-key coefficients
/// enter the FFT.
#[inline]
pub fn torus_to_f64_signed(t: u64) -> f64 {
    t as i64 as f64
}

/// Encodes the exact fraction `numer / 2^denom_log2` as a torus element.
///
/// # Panics
///
/// Panics if `denom_log2 > 64` (no such torus fraction exists).
///
/// # Example
///
/// ```
/// use strix_tfhe::torus::encode_fraction;
/// // 1/8 of the torus
/// assert_eq!(encode_fraction(1, 3), 1u64 << 61);
/// // -1/8 wraps around
/// assert_eq!(encode_fraction(-1, 3), (1u64 << 61).wrapping_neg());
/// ```
#[inline]
pub fn encode_fraction(numer: i64, denom_log2: u32) -> u64 {
    assert!(denom_log2 <= TORUS_BITS, "denominator 2^{denom_log2} exceeds torus precision");
    (numer as u64).wrapping_shl(TORUS_BITS - denom_log2)
}

/// Switches a torus element from modulus `2^64` to modulus
/// `2^log2_modulus`, with rounding (Algorithm 1, line 3).
///
/// Returns a value in `[0, 2^log2_modulus)`. In PBS the target modulus is
/// `2N`, turning torus elements into negacyclic rotation amounts.
///
/// # Panics
///
/// Panics if `log2_modulus` is 0 or exceeds 63.
///
/// # Example
///
/// ```
/// use strix_tfhe::torus::modulus_switch;
/// // 1/4 of the torus → 1/4 of 2N = 512 for N = 1024
/// assert_eq!(modulus_switch(1u64 << 62, 11), 512);
/// ```
#[inline]
pub fn modulus_switch(t: u64, log2_modulus: u32) -> u64 {
    assert!(
        log2_modulus > 0 && log2_modulus < TORUS_BITS,
        "modulus switch target must be within (0, 64) bits"
    );
    let shift = TORUS_BITS - log2_modulus;
    // Round-half-up: add half of the dropped range then truncate. The
    // carry past 2^log2_modulus wraps, which is the correct behaviour on
    // the smaller torus.
    let rounded = (t >> (shift - 1)).wrapping_add(1) >> 1;
    rounded & ((1u64 << log2_modulus) - 1)
}

/// Rounds a torus element to the nearest multiple of `1/2^precision_bits`
/// and returns that multiple's index in `[0, 2^precision_bits)`.
///
/// This is the decryption-side decoder: after removing the mask, the
/// message sits in the top `precision_bits` bits plus noise.
///
/// # Panics
///
/// Panics if `precision_bits` is 0 or exceeds 63.
#[inline]
pub fn decode_message(t: u64, precision_bits: u32) -> u64 {
    modulus_switch(t, precision_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trips_small_integers() {
        for v in [-5i64, -1, 0, 1, 7, 1 << 40] {
            assert_eq!(f64_to_torus(v as f64), v as u64);
        }
    }

    #[test]
    fn f64_reduces_mod_2_64() {
        let two64 = 2.0f64.powi(64);
        assert_eq!(f64_to_torus(two64), 0);
        // Offsets must be multiples of the ulp at this magnitude (4096
        // at 2^64, 8192 at 3·2^64) to stay exactly representable.
        assert_eq!(f64_to_torus(3.0 * two64 + 8192.0), 8192);
        assert_eq!(f64_to_torus(-two64 - 4096.0), 4096u64.wrapping_neg());
    }

    #[test]
    fn signed_interpretation_is_centred() {
        assert_eq!(torus_to_f64_signed(0), 0.0);
        assert_eq!(torus_to_f64_signed(u64::MAX), -1.0);
        assert_eq!(torus_to_f64_signed(1 << 62), (1u64 << 62) as f64);
        assert!(torus_to_f64_signed(1 << 63) < 0.0);
    }

    #[test]
    fn fraction_encoding() {
        assert_eq!(encode_fraction(1, 1), 1 << 63); // 1/2
        assert_eq!(encode_fraction(3, 3), 3 << 61); // 3/8
        assert_eq!(encode_fraction(0, 5), 0);
        // -3/8 + 3/8 = 0 on the torus
        assert_eq!(encode_fraction(-3, 3).wrapping_add(encode_fraction(3, 3)), 0);
    }

    #[test]
    fn modulus_switch_rounds_to_nearest() {
        // For target 2^3 = 8 buckets, bucket width is 2^61.
        let width = 1u64 << 61;
        assert_eq!(modulus_switch(0, 3), 0);
        assert_eq!(modulus_switch(width, 3), 1);
        // Just below half a bucket rounds down; just above rounds up.
        assert_eq!(modulus_switch(width / 2 - 1, 3), 0);
        assert_eq!(modulus_switch(width / 2 + 1, 3), 1);
        // Wrap-around: the top of the torus rounds to bucket 0.
        assert_eq!(modulus_switch(u64::MAX, 3), 0);
    }

    #[test]
    fn modulus_switch_error_is_bounded() {
        // |switch(t)/2^m - t/2^64| <= 2^-(m+1)
        let m = 11u32; // 2N for N = 1024
        for t in [0u64, 1, 1 << 52, 1 << 53, u64::MAX / 3, u64::MAX] {
            let s = modulus_switch(t, m);
            let approx = s as f64 / (1u64 << m) as f64;
            let exact = t as f64 / 2.0f64.powi(64);
            let mut err = (approx - exact).abs();
            err = err.min(1.0 - err); // torus distance
            assert!(err <= 1.0 / (1u64 << (m + 1)) as f64 + 1e-12, "t={t}");
        }
    }

    #[test]
    fn decode_recovers_noisy_encoding() {
        // Encode message 5 in a 3-bit space, add noise < half a step.
        let encoded = encode_fraction(5, 3);
        let noise = 1u64 << 58; // 1/64 of the torus, below the 1/16 threshold
        assert_eq!(decode_message(encoded.wrapping_add(noise), 3), 5);
        assert_eq!(decode_message(encoded.wrapping_sub(noise), 3), 5);
    }

    #[test]
    #[should_panic(expected = "modulus switch target")]
    fn modulus_switch_rejects_zero_bits() {
        modulus_switch(1, 0);
    }
}
