//! Programmable bootstrapping (Algorithm 1).
//!
//! PBS refreshes the noise of an LWE ciphertext while evaluating an
//! arbitrary univariate function encoded in a test vector:
//!
//! 1. **Modulus switching** — every ciphertext element is switched from
//!    `q = 2^64` to `2N`, turning it into a rotation amount.
//! 2. **Blind rotation** — `n` sequential CMUX iterations rotate the
//!    test vector by the (encrypted) phase. Each iteration performs a
//!    rotate-and-subtract, a gadget decomposition and an external
//!    product — the six-stage dataflow of the Strix PBS cluster.
//! 3. **Sample extraction** — coefficient 0 of the rotated accumulator
//!    is extracted as an LWE ciphertext of dimension `k·N`.
//!
//! Note on Algorithm 1 as printed: line 6 shows the accumulator update
//! as `tv − Rotate(tv)` feeding the external product directly; the
//! mathematically complete CMUX also re-adds the untouched accumulator,
//! `acc ← acc + bsk_i ⊡ (X^{ã_i}·acc − acc)`, which is what every TFHE
//! library computes and what we implement. The per-iteration workload
//! (one rotation/subtraction, one decomposition, `(k+1)·l_b` FFTs,
//! `(k+1)²·l_b` pointwise multiplies, `k+1` IFFTs) is identical.
//!
//! # Hot-path execution model
//!
//! The CMUX loop runs entirely on per-thread [`PbsScratch`] buffers —
//! no heap allocation between the initial accumulator setup and sample
//! extraction. All Fourier-domain data (bootstrapping-key rows, digit
//! spectra, accumulator spectra) lives in the transform plan's
//! bit-reversed slot order end to end — the `strix-fft` kernel never
//! runs a permutation pass, and nothing in PBS ever needs natural bin
//! order. Batched epochs additionally hoist the per-iteration modulus
//! switch: every job's mask is switched once into a per-epoch table
//! before the key-major loop starts. Epochs scale across cores with
//! [`BootstrapKey::bootstrap_batch_parallel`]: the job list is split
//! into contiguous shards, each shard walks the shared bootstrapping
//! key in key-major order with its own scratch, and the results come
//! back in job order, bit-identical to the sequential
//! [`BootstrapKey::bootstrap_batch`].

use strix_fft::{MonomialTable, NegacyclicFft};

use crate::decompose::DecompositionParams;
use crate::ggsw::{FourierGgsw, GgswCiphertext};
use crate::glwe::{GlweCiphertext, GlweSecretKey};
use crate::lwe::{LweCiphertext, LweSecretKey};
use crate::params::{PbsKernel, TfheParameters};
use crate::poly::TorusPolynomial;
use crate::profiler::{NoProbe, PbsStage, Probe, StageTimings, TimingProbe};
use crate::rng::NoiseSampler;
use crate::scratch::{MultiBitPbsScratch, PbsScratch, CMUX_JOB_BLOCK};
use crate::torus::{encode_fraction, f64_to_torus, modulus_switch};
use crate::TfheError;

/// A test vector — the GLWE-encoded look-up table consumed by PBS.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lut {
    poly: TorusPolynomial,
    /// Message precision the table was built for (the sign LUT counts
    /// as 1 bit: two half-torus boxes). Drives the static analyzer's
    /// per-node decision distance.
    precision_bits: u32,
}

impl Lut {
    /// The sign LUT used by gate bootstrapping: every output is `+μ` for
    /// phases in the positive half-torus and `−μ` for the negative half
    /// (via negacyclic wrap-around). All `N` coefficients equal `μ`.
    pub fn sign(poly_size: usize, mu: u64) -> Self {
        Self { poly: TorusPolynomial::from_coeffs(vec![mu; poly_size]), precision_bits: 1 }
    }

    /// Builds the LUT for an arbitrary function over a
    /// `precision_bits`-bit message space with one padding bit:
    /// inputs `m ∈ [0, 2^p)` map to `f(m)·Δ` with `Δ = q/2^{p+1}`.
    ///
    /// Each message owns a *box* of `N/2^p` consecutive coefficients;
    /// the final half-box rotation centres the boxes so that phases up
    /// to half a box away from the nominal encoding still decode to the
    /// right entry.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::InvalidParameters`] if `2^p > N` (boxes
    /// would be empty) or `p >= 63`.
    pub fn from_function<F>(poly_size: usize, precision_bits: u32, f: F) -> Result<Self, TfheError>
    where
        F: Fn(u64) -> u64,
    {
        if precision_bits >= 63 {
            return Err(TfheError::InvalidParameters("precision must be below 63 bits"));
        }
        Self::from_function_scaled(poly_size, precision_bits, 64 - precision_bits - 1, f)
    }

    /// As [`Self::from_function`], but with an explicit output scale:
    /// LUT entries are `f(m) · 2^output_shift`. Input decoding still
    /// follows `precision_bits`. Used when the PBS must *re-encode*
    /// messages into a different space — e.g. moving an operand into
    /// the low half of a packed bivariate message.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::InvalidParameters`] if `2^precision_bits`
    /// exceeds the polynomial size or the shift exceeds the torus.
    pub fn from_function_scaled<F>(
        poly_size: usize,
        precision_bits: u32,
        output_shift: u32,
        f: F,
    ) -> Result<Self, TfheError>
    where
        F: Fn(u64) -> u64,
    {
        if output_shift >= 64 {
            return Err(TfheError::InvalidParameters("output shift exceeds the torus"));
        }
        let space = 1usize << precision_bits;
        if space > poly_size {
            return Err(TfheError::InvalidParameters("message space larger than polynomial size"));
        }
        let box_size = poly_size / space;
        let mut coeffs = vec![0u64; poly_size];
        for (j, c) in coeffs.iter_mut().enumerate() {
            let m = (j / box_size) as u64;
            *c = f(m).wrapping_shl(output_shift);
        }
        let poly = TorusPolynomial::from_coeffs(coeffs).rotate_left(box_size / 2);
        Ok(Self { poly, precision_bits })
    }

    /// The underlying test-vector polynomial.
    #[inline]
    pub fn poly(&self) -> &TorusPolynomial {
        &self.poly
    }

    /// Polynomial size `N`.
    #[inline]
    pub fn poly_size(&self) -> usize {
        self.poly.size()
    }

    /// Message precision the table was built for, in bits.
    #[inline]
    pub fn precision_bits(&self) -> u32 {
        self.precision_bits
    }

    /// Distance from a nominal encoding to the nearest decision
    /// boundary of this table, in torus units: half a redundancy box,
    /// `2^-(p+2)` for a `p`-bit message space with one padding bit.
    /// The sign LUT (`p = 1`) gives the classic gate margin of `1/8`.
    #[inline]
    pub fn decision_distance(&self) -> f64 {
        crate::noise::lut_decision_distance(self.precision_bits)
    }
}

/// One entry of a batched bootstrap: a ciphertext and the LUT to
/// evaluate on it. Jobs in a batch share the bootstrapping key (that is
/// the point of batching) but may use different LUTs.
#[derive(Clone, Copy, Debug)]
pub struct PbsJob<'a> {
    /// The LWE ciphertext to bootstrap (dimension `n`).
    pub ct: &'a LweCiphertext,
    /// The test vector to evaluate.
    pub lut: &'a Lut,
}

/// The bootstrapping key: `n` Fourier-domain GGSW encryptions of the LWE
/// secret-key bits, plus the FFT plan they were transformed under.
#[derive(Clone, Debug)]
pub struct BootstrapKey {
    ggsws: Vec<FourierGgsw>,
    fft: NegacyclicFft,
    glwe_dimension: usize,
    poly_size: usize,
    decomp: DecompositionParams,
}

impl BootstrapKey {
    /// Generates a bootstrapping key encrypting `lwe_sk` under `glwe_sk`.
    pub fn generate(
        lwe_sk: &LweSecretKey,
        glwe_sk: &GlweSecretKey,
        params: &TfheParameters,
        rng: &mut NoiseSampler,
    ) -> Self {
        let decomp = DecompositionParams::new(params.pbs_base_log, params.pbs_level);
        let fft = NegacyclicFft::with_backend(params.polynomial_size, params.fft_backend)
            // lint:allow(panic) parameters were validated at construction
            .expect("validated parameters have power-of-two N and an available backend");
        let ggsws = lwe_sk
            .bits()
            .iter()
            .map(|&s| {
                GgswCiphertext::encrypt_scalar(s, glwe_sk, decomp, params.glwe_noise_std, rng)
                    .to_fourier(&fft)
            })
            .collect();
        Self {
            ggsws,
            fft,
            glwe_dimension: params.glwe_dimension,
            poly_size: params.polynomial_size,
            decomp,
        }
    }

    /// Generates a *timing-equivalent* bootstrapping key without real
    /// encryption: every GGSW row is a trivial (zero-mask) encryption
    /// carrying only the gadget term for secret bit 0.
    ///
    /// Running PBS with this key performs exactly the same arithmetic
    /// (same decompositions, FFTs, multiplies) as with a real key, so
    /// it is suitable for the CPU-baseline *performance* measurements
    /// at large parameter sets, where real key generation via the exact
    /// schoolbook path would be prohibitive. It is cryptographically
    /// meaningless — outputs decrypt to the unrotated test vector.
    pub fn generate_for_benchmark(params: &TfheParameters) -> Self {
        let decomp = DecompositionParams::new(params.pbs_base_log, params.pbs_level);
        let fft = NegacyclicFft::with_backend(params.polynomial_size, params.fft_backend)
            // lint:allow(panic) parameters were validated at construction
            .expect("validated parameters have power-of-two N and an available backend");
        // GGSW of message 1: gadget terms give the spectra non-trivial
        // values so the FFT timing is honest.
        let template =
            GgswCiphertext::trivial(1, params.glwe_dimension, params.polynomial_size, decomp)
                .to_fourier(&fft);
        let ggsws = vec![template; params.lwe_dimension];
        Self {
            ggsws,
            fft,
            glwe_dimension: params.glwe_dimension,
            poly_size: params.polynomial_size,
            decomp,
        }
    }

    /// Expansion half of seeded key transport: rebuilds each GGSW from
    /// its stored body polynomials and the CRS mask stream (drawn in
    /// generation order), then runs the usual Fourier materialisation.
    ///
    /// # Panics
    ///
    /// Panics if `bodies` does not hold one entry per secret bit with
    /// `(k+1)·l` rows each (transport payload invariant).
    pub(crate) fn from_seeded_parts(
        bodies: &[Vec<TorusPolynomial>],
        params: &TfheParameters,
        crs: &mut NoiseSampler,
    ) -> Self {
        assert_eq!(bodies.len(), params.lwe_dimension, "seeded bsk entry count");
        let decomp = DecompositionParams::new(params.pbs_base_log, params.pbs_level);
        let fft = NegacyclicFft::with_backend(params.polynomial_size, params.fft_backend)
            // lint:allow(panic) parameters were validated at construction
            .expect("validated parameters have power-of-two N and an available backend");
        let ggsws = bodies
            .iter()
            .map(|entry| {
                GgswCiphertext::from_seeded_parts(entry, decomp, params.glwe_dimension, crs)
                    .to_fourier(&fft)
            })
            .collect();
        Self {
            ggsws,
            fft,
            glwe_dimension: params.glwe_dimension,
            poly_size: params.polynomial_size,
            decomp,
        }
    }

    /// Input LWE dimension `n` (number of blind-rotation iterations).
    #[inline]
    pub fn input_dimension(&self) -> usize {
        self.ggsws.len()
    }

    /// Output LWE dimension `k·N` after sample extraction.
    #[inline]
    pub fn output_dimension(&self) -> usize {
        self.glwe_dimension * self.poly_size
    }

    /// Polynomial size `N`.
    #[inline]
    pub fn poly_size(&self) -> usize {
        self.poly_size
    }

    /// The decomposition used by the external products.
    #[inline]
    pub fn decomposition(&self) -> DecompositionParams {
        self.decomp
    }

    /// The FFT plan shared by all external products.
    #[inline]
    pub fn fft(&self) -> &NegacyclicFft {
        &self.fft
    }

    /// Allocates a [`PbsScratch`] sized to this key — one per thread,
    /// reused across every bootstrap that thread performs.
    pub fn scratch(&self) -> PbsScratch {
        PbsScratch::new(self.glwe_dimension, self.poly_size, self.decomp)
    }

    /// Total Fourier-domain key size in bytes (HBM traffic per full PBS).
    pub fn byte_size(&self) -> usize {
        self.ggsws.iter().map(FourierGgsw::byte_size).sum()
    }

    /// Blind rotation (Algorithm 1 lines 2–12): rotates `lut` by the
    /// encrypted phase of `ct`, returning the GLWE accumulator.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] if the ciphertext
    /// dimension or LUT size disagrees with the key.
    pub fn blind_rotate(&self, ct: &LweCiphertext, lut: &Lut) -> Result<GlweCiphertext, TfheError> {
        let mut scratch = self.scratch();
        self.blind_rotate_with(ct, lut, &mut scratch)
    }

    /// As [`Self::blind_rotate`] with caller-provided scratch: after
    /// the initial accumulator setup, the CMUX loop performs no heap
    /// allocation.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on shape mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` was sized for a different parameter set.
    pub fn blind_rotate_with(
        &self,
        ct: &LweCiphertext,
        lut: &Lut,
        scratch: &mut PbsScratch,
    ) -> Result<GlweCiphertext, TfheError> {
        self.blind_rotate_core(ct, lut, scratch, &mut NoProbe)
    }

    /// The single implementation behind the per-job blind-rotation
    /// entry points, generic over a [`Probe`]: the production path
    /// passes [`NoProbe`] (inlines to nothing), the profiled path a
    /// [`TimingProbe`] — one rotation loop, so instrumented and
    /// production execution can never drift.
    // lint:hot-path-start — the classical per-job CMUX loop must stay allocation-free
    fn blind_rotate_core<P: Probe>(
        &self,
        ct: &LweCiphertext,
        lut: &Lut,
        scratch: &mut PbsScratch,
        probe: &mut P,
    ) -> Result<GlweCiphertext, TfheError> {
        self.check_shape(ct, lut)?;
        scratch.check_shape(self.glwe_dimension, self.poly_size, self.decomp.level);
        let log2_two_n = self.poly_size.trailing_zeros() + 1;
        let b_tilde =
            probe.time(PbsStage::ModSwitch, || modulus_switch(ct.body(), log2_two_n)) as usize;
        let mut acc = GlweCiphertext::trivial(self.glwe_dimension, lut.poly().rotate_left(b_tilde));
        for (ggsw, &a) in self.ggsws.iter().zip(ct.mask()) {
            let a_tilde =
                probe.time(PbsStage::ModSwitch, || modulus_switch(a, log2_two_n)) as usize;
            if a_tilde == 0 {
                continue;
            }
            // CMUX: acc ← acc + ggsw ⊡ (X^ã·acc − acc), allocation-free.
            let PbsScratch { diff, prod, ep, .. } = scratch;
            probe.time(PbsStage::Rotate, || {
                acc.rotate_right_into(a_tilde, diff);
                // lint:allow(panic) shape invariant established at construction
                diff.sub_assign(&acc).expect("scratch shape is pre-validated");
            });
            ggsw.external_product_probed(diff, &self.fft, prod, ep, probe);
            // lint:allow(panic) shape invariant established at construction
            acc.add_assign(prod).expect("scratch shape is pre-validated");
        }
        Ok(acc)
    }
    // lint:hot-path-end

    /// Blind rotation with stage timing instrumentation — the same
    /// rotation loop as [`Self::blind_rotate_with`], observed through
    /// a timing probe.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on shape mismatch.
    pub fn blind_rotate_profiled(
        &self,
        ct: &LweCiphertext,
        lut: &Lut,
        timings: &mut StageTimings,
    ) -> Result<GlweCiphertext, TfheError> {
        let mut scratch = self.scratch();
        self.blind_rotate_core(ct, lut, &mut scratch, &mut TimingProbe(timings))
    }

    /// Checks that a `(ciphertext, LUT)` pair matches this key's shape
    /// — the single validation both the single and batched bootstrap
    /// paths apply, exposed so schedulers can pre-validate jobs before
    /// committing them to a shared batch.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] naming the mismatch.
    pub fn check_shape(&self, ct: &LweCiphertext, lut: &Lut) -> Result<(), TfheError> {
        if ct.dimension() != self.input_dimension() {
            return Err(TfheError::ParameterMismatch {
                what: "lwe dimension",
                left: ct.dimension(),
                right: self.input_dimension(),
            });
        }
        if lut.poly_size() != self.poly_size {
            return Err(TfheError::ParameterMismatch {
                what: "polynomial size",
                left: lut.poly_size(),
                right: self.poly_size,
            });
        }
        Ok(())
    }

    /// Blind-rotates a whole batch with **key-major iteration order**,
    /// the software analogue of the paper's core-level batching
    /// (§IV-C): the outer loop walks the `n` bootstrapping-key entries
    /// and the inner loop applies each GGSW to every accumulator in
    /// the batch, so one key fetch is reused `batch` times — exactly
    /// how an HSC amortises its per-iteration bsk stream. Jobs may
    /// carry different LUTs; only the key material is shared.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] if any job's ciphertext
    /// dimension or LUT size disagrees with the key.
    pub fn blind_rotate_batch(
        &self,
        jobs: &[PbsJob<'_>],
    ) -> Result<Vec<GlweCiphertext>, TfheError> {
        let mut scratch = self.scratch();
        self.blind_rotate_batch_with(jobs, &mut scratch)
    }

    /// As [`Self::blind_rotate_batch`] with caller-provided scratch —
    /// one scratch serves the whole epoch, so the key-major loop
    /// performs no heap allocation beyond the output accumulators and
    /// one per-epoch switched-mask table: every job's mask is
    /// modulus-switched **once, up front**, rather than per key entry
    /// inside the hot loop (epoch-wide hoisting of Algorithm 1 line 5).
    ///
    /// This is the **coefficient-batched, job-blocked** CMUX path (the
    /// paper's two batching levels realised together): per key entry,
    /// accumulators are processed in blocks of
    /// [`CMUX_JOB_BLOCK`] jobs whose
    /// digit polynomials go through one batched split-complex forward
    /// transform each ([`NegacyclicFft::forward_i64_many`]) and whose
    /// VMA runs **row-major across the block**, so each key row is
    /// fetched once per block instead of once per job. Outputs are
    /// bit-identical to the per-job oracle path
    /// ([`Self::blind_rotate_with`]) — the schedule changes, the
    /// per-job arithmetic does not.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on any shape mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` was sized for a different parameter set.
    pub fn blind_rotate_batch_with(
        &self,
        jobs: &[PbsJob<'_>],
        scratch: &mut PbsScratch,
    ) -> Result<Vec<GlweCiphertext>, TfheError> {
        self.blind_rotate_batch_core(jobs, scratch, &mut NoProbe)
    }

    /// The single implementation behind the batched blind rotation,
    /// generic over a [`Probe`] (production: [`NoProbe`]; the
    /// per-stage breakdown harness: [`TimingProbe`]).
    fn blind_rotate_batch_core<P: Probe>(
        &self,
        jobs: &[PbsJob<'_>],
        scratch: &mut PbsScratch,
        probe: &mut P,
    ) -> Result<Vec<GlweCiphertext>, TfheError> {
        let log2_two_n = self.poly_size.trailing_zeros() + 1;
        for job in jobs {
            self.check_shape(job.ct, job.lut)?;
        }
        scratch.check_shape(self.glwe_dimension, self.poly_size, self.decomp.level);

        // Initial rotation by each body (Algorithm 1 lines 3–4).
        let mut accs: Vec<GlweCiphertext> = jobs
            .iter()
            .map(|job| {
                let b_tilde = modulus_switch(job.ct.body(), log2_two_n) as usize;
                GlweCiphertext::trivial(self.glwe_dimension, job.lut.poly().rotate_left(b_tilde))
            })
            .collect();

        // Epoch-wide hoisting: switch every mask element of every job
        // once, up front, instead of re-running `modulus_switch` inside
        // the key-major inner loop (`n · batch` calls per epoch). The
        // table is **entry-major** (`switched[i·batch + j]`), so the
        // key-major loop below reads each entry's rotation amounts as
        // one contiguous slice per block. The switched values live in
        // `[0, 2N)` so `u32` keeps the table a quarter the size of the
        // masks it replaces. `modulus_switch` is a pure rounding shift,
        // so precomputation is bit-identical to switching in-loop.
        let n_iter = self.ggsws.len();
        let batch = jobs.len();
        let mut switched = vec![0u32; batch * n_iter];
        probe.time(PbsStage::ModSwitch, || {
            for (j, job) in jobs.iter().enumerate() {
                for (i, &a) in job.ct.mask().iter().enumerate() {
                    switched[i * batch + j] = modulus_switch(a, log2_two_n) as u32;
                }
            }
        });

        // Key-major, job-blocked blind rotation: fetch GGSW i once,
        // use it for the whole batch, block by block.
        for (i, ggsw) in self.ggsws.iter().enumerate() {
            let amounts = &switched[i * batch..(i + 1) * batch];
            for (accs_block, amounts_block) in
                accs.chunks_mut(CMUX_JOB_BLOCK).zip(amounts.chunks(CMUX_JOB_BLOCK))
            {
                self.cmux_block(ggsw, accs_block, amounts_block, scratch, probe);
            }
        }
        Ok(accs)
    }

    /// One blocked CMUX step: applies `ggsw` to every accumulator of
    /// the block whose rotation amount is non-zero, computing
    /// `acc ← acc + ggsw ⊡ (X^ã·acc − acc)` for each, bit-identically
    /// to the per-job path but scheduled for locality:
    ///
    /// 1. **Stage** — per job: rotate-and-subtract, gadget-decompose
    ///    all `k+1` difference polynomials, and run all `(k+1)·l`
    ///    forward FFTs as one batched split-complex transform.
    /// 2. **VMA, row-major across the block** — for each of the
    ///    `(k+1)·l` key rows, multiply–accumulate it against every
    ///    staged job before the next row streams in, so the row stays
    ///    in L1 across the block.
    /// 3. **Drain** — per job: one batched inverse transform of the
    ///    `k+1` accumulator spectra, fused with the torus conversion
    ///    and the accumulator update.
    ///
    /// Per job, rows are visited in the same order and every
    /// floating-point/torus operation is the same as in
    /// [`FourierGgsw::external_product_scratch`] — only the loop
    /// nesting across *independent* jobs differs, which cannot change
    /// a bit of any output.
    // lint:hot-path-start — the blocked classical CMUX kernel must stay allocation-free
    fn cmux_block<P: Probe>(
        &self,
        ggsw: &FourierGgsw,
        accs: &mut [GlweCiphertext],
        amounts: &[u32],
        scratch: &mut PbsScratch,
        probe: &mut P,
    ) {
        debug_assert_eq!(accs.len(), amounts.len());
        debug_assert!(accs.len() <= CMUX_JOB_BLOCK);
        let k = self.glwe_dimension;
        let n = self.poly_size;
        let level = self.decomp.level;
        let PbsScratch { diff, ep, all_digits, digit_batch, acc_batch, time_batch, .. } = scratch;

        // Stage: rotate/subtract, decompose, batched forward FFTs.
        for ((acc, &amt), digits) in accs.iter().zip(amounts).zip(digit_batch.iter_mut()) {
            if amt == 0 {
                continue;
            }
            probe.time(PbsStage::Rotate, || {
                acc.rotate_right_into(amt as usize, diff);
                // lint:allow(panic) shape invariant established at construction
                diff.sub_assign(acc).expect("scratch shape is pre-validated");
            });
            probe.time(PbsStage::Decompose, || {
                for (j, poly) in diff.polys().enumerate() {
                    self.decomp.decompose_polynomial_levels(
                        poly,
                        &mut all_digits[j * level * n..(j + 1) * level * n],
                        &mut ep.decomp_state,
                    );
                }
            });
            probe.time(PbsStage::Fft, || {
                self.fft
                    .forward_i64_many(all_digits, digits)
                    // lint:allow(panic) shape invariant established at construction
                    .expect("digit batch matches the fft plan");
            });
        }

        // VMA, row-major across the block: key row `r` is loaded once
        // and applied to every staged job while hot.
        probe.time(PbsStage::VectorMultiply, || {
            for spec in
                acc_batch.iter_mut().zip(amounts).filter(|(_, &amt)| amt != 0).map(|(s, _)| s)
            {
                spec.fill_zero();
            }
            for r in 0..(k + 1) * level {
                for (digits, spec) in digit_batch
                    .iter()
                    .zip(acc_batch.iter_mut())
                    .zip(amounts)
                    .filter(|(_, &amt)| amt != 0)
                    .map(|(pair, _)| pair)
                {
                    let (d_re, d_im) = digits.transform(r);
                    for col in 0..=k {
                        let (k_re, k_im) = ggsw.row_col(r, col);
                        let (a_re, a_im) = spec.transform_mut(col);
                        self.fft.pointwise_mul_add_soa(a_re, a_im, d_re, d_im, k_re, k_im);
                    }
                }
            }
        });

        // Drain: batched inverse, fused torus conversion + accumulate.
        for ((acc, &amt), spec) in accs.iter_mut().zip(amounts).zip(acc_batch.iter_mut()) {
            if amt == 0 {
                continue;
            }
            probe.time(PbsStage::IfftAccumulate, || {
                self.fft
                    .backward_f64_many(spec, time_batch)
                    // lint:allow(panic) shape invariant established at construction
                    .expect("accumulator batch matches the fft plan");
                for (col, time) in time_batch.chunks_exact(n).enumerate() {
                    // lint:allow(panic) shape invariant established at construction
                    let poly = acc.poly_mut(col).expect("column within GLWE dimension");
                    for (o, &v) in poly.coeffs_mut().iter_mut().zip(time) {
                        *o = o.wrapping_add(f64_to_torus(v));
                    }
                }
            });
        }
    }
    // lint:hot-path-end

    /// Batched programmable bootstrap: [`Self::blind_rotate_batch`]
    /// followed by per-job sample extraction. Outputs are in job order
    /// and still under the extracted (`k·N`) key.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on any shape mismatch.
    pub fn bootstrap_batch(&self, jobs: &[PbsJob<'_>]) -> Result<Vec<LweCiphertext>, TfheError> {
        Ok(self.blind_rotate_batch(jobs)?.iter().map(GlweCiphertext::sample_extract).collect())
    }

    /// As [`Self::bootstrap_batch`] with per-stage timing
    /// instrumentation over the **production blocked CMUX path** —
    /// the same kernel the un-instrumented batch runs, observed
    /// through a timing probe, so the per-stage breakdown
    /// (decompose / forward FFT / VMA / inverse FFT) reflects exactly
    /// what production executes. Used by the `bench_snapshot` harness.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on any shape mismatch.
    pub fn bootstrap_batch_profiled(
        &self,
        jobs: &[PbsJob<'_>],
        timings: &mut StageTimings,
    ) -> Result<Vec<LweCiphertext>, TfheError> {
        let mut scratch = self.scratch();
        let mut probe = TimingProbe(timings);
        let accs = self.blind_rotate_batch_core(jobs, &mut scratch, &mut probe)?;
        Ok(probe.time(PbsStage::SampleExtract, || {
            accs.iter().map(GlweCiphertext::sample_extract).collect()
        }))
    }

    /// Parallel epoch execution: splits `jobs` into `threads`
    /// contiguous shards and runs each through the key-major
    /// [`Self::bootstrap_batch`] on its own [`std::thread::scope`]
    /// worker with its own [`PbsScratch`], all sharing this
    /// `&BootstrapKey`. This is the software form of the paper's
    /// two-level batching actually running in parallel: core-level
    /// batching (key-major reuse) *within* each shard, device-level
    /// parallelism *across* shards.
    ///
    /// Results come back **in job order** and are **bit-identical** to
    /// the sequential path — each job's CMUX sequence depends only on
    /// its own ciphertext, so sharding cannot change a single
    /// floating-point operation.
    ///
    /// `threads` is clamped to `[1, jobs.len()]`; `threads <= 1` runs
    /// sequentially on the calling thread.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] if any job's shape
    /// disagrees with the key (validated up front, before any thread
    /// is spawned).
    pub fn bootstrap_batch_parallel(
        &self,
        jobs: &[PbsJob<'_>],
        threads: usize,
    ) -> Result<Vec<LweCiphertext>, TfheError> {
        for job in jobs {
            self.check_shape(job.ct, job.lut)?;
        }
        let threads = threads.max(1).min(jobs.len());
        if threads <= 1 {
            return self.bootstrap_batch(jobs);
        }
        // Balanced contiguous shards: the first `jobs % threads` shards
        // take one extra job, so exactly `threads` workers spawn and no
        // worker trails the rest by more than one PBS. Contiguity
        // preserves key-major order within each shard and job order
        // across the concatenated results.
        let base = jobs.len() / threads;
        let extra = jobs.len() % threads;
        let shards: Vec<Result<Vec<LweCiphertext>, TfheError>> = std::thread::scope(|scope| {
            let mut start = 0;
            let handles: Vec<_> = (0..threads)
                .map(|i| {
                    let len = base + usize::from(i < extra);
                    let shard = &jobs[start..start + len];
                    start += len;
                    scope.spawn(move || self.bootstrap_batch(shard))
                })
                .collect();
            // lint:allow(panic) a worker panic is propagated, not swallowed
            handles.into_iter().map(|h| h.join().expect("PBS shard worker panicked")).collect()
        });
        let mut out = Vec::with_capacity(jobs.len());
        for shard in shards {
            out.extend(shard?);
        }
        Ok(out)
    }

    /// Full programmable bootstrap: blind rotation followed by sample
    /// extraction. The output is an LWE ciphertext of dimension `k·N`
    /// encrypting `lut[phase]` with *fresh* noise, still under the
    /// extracted key — keyswitching back to the original key is a
    /// separate step (Algorithm 2, [`crate::keyswitch`]).
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on shape mismatch.
    pub fn bootstrap(&self, ct: &LweCiphertext, lut: &Lut) -> Result<LweCiphertext, TfheError> {
        Ok(self.blind_rotate(ct, lut)?.sample_extract())
    }

    /// Profiled variant of [`Self::bootstrap`].
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on shape mismatch.
    pub fn bootstrap_profiled(
        &self,
        ct: &LweCiphertext,
        lut: &Lut,
        timings: &mut StageTimings,
    ) -> Result<LweCiphertext, TfheError> {
        let acc = self.blind_rotate_profiled(ct, lut, timings)?;
        let t0 = std::time::Instant::now();
        let out = acc.sample_extract();
        timings.add(PbsStage::SampleExtract, t0.elapsed());
        Ok(out)
    }
}

/// The **multi-bit** bootstrapping key: `⌈n/g⌉` *groups* of
/// Fourier-domain GGSW entries for grouping factor `g` — the software
/// counterpart of tfhe-rs's CUDA `MULTI_BIT` PBS kernel.
///
/// Group `i` covers secret bits `s_{ig} .. s_{ig+g-1}` and stores `2^g`
/// GGSW encryptions, one per bit pattern `b ∈ {0,1}^g`, of the
/// *indicator product* `m_b = ∏_j s^{b_j} · (1−s)^{1−b_j}` — exactly
/// one `m_b` equals 1 (the pattern matching the actual key bits), the
/// rest encrypt 0. The last group covers the `n mod g` remainder bits
/// with `2^{n mod g}` entries.
///
/// Blind rotation then needs only **one external product per group**
/// instead of one CMUX per bit: since
/// `X^{Σ_j ã_j s_j} = Σ_b X^{⟨b, ã⟩} · m_b`, the server assembles the
/// *combined* GGSW `G = Σ_b X^{d_b} · GGSW(m_b)` (monomial weighting is
/// a pointwise spectrum multiply, [`MonomialTable`]) and replaces the
/// accumulator with `G ⊡ acc` — a rotation of the accumulator by the
/// whole group's phase contribution in a single decompose → FFT → VMA →
/// IFFT pass. `⌈n/g⌉` passes replace `n`, trading a `2^g/g ×` larger
/// key (and a `2^g ×` key-noise term, see
/// [`crate::noise::multi_bit_external_product_variance`]) for `g ×`
/// fewer transforms.
///
/// Outputs are **not bit-identical** to [`BootstrapKey`] — the
/// arithmetic is genuinely different — but decrypt to the same message:
/// both kernels realise the same blind rotation
/// `X^{b̃ + Σ ã_j s_j} · lut`.
#[derive(Clone, Debug)]
pub struct MultiBitBootstrapKey {
    /// Group `i` holds `2^{m_i}` pattern entries (`m_i = g` except for
    /// the remainder group).
    groups: Vec<Vec<FourierGgsw>>,
    fft: NegacyclicFft,
    mono: MonomialTable,
    glwe_dimension: usize,
    poly_size: usize,
    decomp: DecompositionParams,
    grouping_factor: usize,
    input_dimension: usize,
}

impl MultiBitBootstrapKey {
    /// Generates a multi-bit bootstrapping key encrypting `lwe_sk`
    /// under `glwe_sk` at `grouping_factor` bits per key entry.
    ///
    /// Every one of a group's `2^g` pattern entries is a *real* GGSW
    /// encryption (including the `2^g − 1` encryptions of zero): which
    /// single pattern holds the 1 is exactly the key material.
    ///
    /// # Panics
    ///
    /// Panics if `grouping_factor` is 0, exceeds
    /// [`PbsKernel::MAX_GROUPING_FACTOR`] or exceeds the LWE dimension
    /// (all rejected earlier by [`TfheParameters::validate`]).
    pub fn generate(
        lwe_sk: &LweSecretKey,
        glwe_sk: &GlweSecretKey,
        params: &TfheParameters,
        grouping_factor: usize,
        rng: &mut NoiseSampler,
    ) -> Self {
        Self::check_grouping(grouping_factor, lwe_sk.bits().len());
        let decomp = DecompositionParams::new(params.pbs_base_log, params.pbs_level);
        let fft = NegacyclicFft::with_backend(params.polynomial_size, params.fft_backend)
            // lint:allow(panic) parameters were validated at construction
            .expect("validated parameters have power-of-two N and an available backend");
        let groups = lwe_sk
            .bits()
            .chunks(grouping_factor)
            .map(|bits| {
                (0..1usize << bits.len())
                    .map(|pattern| {
                        let indicator: u64 = bits
                            .iter()
                            .enumerate()
                            .map(|(t, &s)| if (pattern >> t) & 1 == 1 { s } else { 1 - s })
                            .product();
                        GgswCiphertext::encrypt_scalar(
                            indicator,
                            glwe_sk,
                            decomp,
                            params.glwe_noise_std,
                            rng,
                        )
                        .to_fourier(&fft)
                    })
                    .collect()
            })
            .collect();
        let mono = MonomialTable::for_plan(&fft);
        Self {
            groups,
            fft,
            mono,
            glwe_dimension: params.glwe_dimension,
            poly_size: params.polynomial_size,
            decomp,
            grouping_factor,
            input_dimension: params.lwe_dimension,
        }
    }

    /// Generates a *timing-equivalent* multi-bit key without real
    /// encryption: every pattern entry is a trivial GGSW of 1 (same
    /// convention as [`BootstrapKey::generate_for_benchmark`]). The
    /// grouped rotation performs exactly the same arithmetic as with a
    /// real key; outputs are cryptographically meaningless.
    ///
    /// # Panics
    ///
    /// Panics if `grouping_factor` is out of range (see
    /// [`Self::generate`]).
    pub fn generate_for_benchmark(params: &TfheParameters, grouping_factor: usize) -> Self {
        Self::check_grouping(grouping_factor, params.lwe_dimension);
        let decomp = DecompositionParams::new(params.pbs_base_log, params.pbs_level);
        let fft = NegacyclicFft::with_backend(params.polynomial_size, params.fft_backend)
            // lint:allow(panic) parameters were validated at construction
            .expect("validated parameters have power-of-two N and an available backend");
        let template =
            GgswCiphertext::trivial(1, params.glwe_dimension, params.polynomial_size, decomp)
                .to_fourier(&fft);
        let full_groups = params.lwe_dimension / grouping_factor;
        let remainder = params.lwe_dimension % grouping_factor;
        let mut groups: Vec<Vec<FourierGgsw>> =
            vec![vec![template.clone(); 1 << grouping_factor]; full_groups];
        if remainder > 0 {
            groups.push(vec![template; 1 << remainder]);
        }
        let mono = MonomialTable::for_plan(&fft);
        Self {
            groups,
            fft,
            mono,
            glwe_dimension: params.glwe_dimension,
            poly_size: params.polynomial_size,
            decomp,
            grouping_factor,
            input_dimension: params.lwe_dimension,
        }
    }

    /// Expansion half of seeded key transport: rebuilds every pattern
    /// entry from its stored body polynomials and the CRS mask stream
    /// (drawn in generation order: group-major, then pattern), then
    /// runs the usual Fourier materialisation.
    ///
    /// # Panics
    ///
    /// Panics if the group/entry structure does not match the
    /// parameters (transport payload invariant).
    pub(crate) fn from_seeded_parts(
        group_bodies: &[Vec<Vec<TorusPolynomial>>],
        params: &TfheParameters,
        grouping_factor: usize,
        crs: &mut NoiseSampler,
    ) -> Self {
        Self::check_grouping(grouping_factor, params.lwe_dimension);
        assert_eq!(
            group_bodies.len(),
            params.multi_bit_group_count(grouping_factor),
            "seeded mbsk group count"
        );
        let decomp = DecompositionParams::new(params.pbs_base_log, params.pbs_level);
        let fft = NegacyclicFft::with_backend(params.polynomial_size, params.fft_backend)
            // lint:allow(panic) parameters were validated at construction
            .expect("validated parameters have power-of-two N and an available backend");
        let groups = group_bodies
            .iter()
            .map(|entries| {
                entries
                    .iter()
                    .map(|entry| {
                        GgswCiphertext::from_seeded_parts(entry, decomp, params.glwe_dimension, crs)
                            .to_fourier(&fft)
                    })
                    .collect()
            })
            .collect();
        let mono = MonomialTable::for_plan(&fft);
        Self {
            groups,
            fft,
            mono,
            glwe_dimension: params.glwe_dimension,
            poly_size: params.polynomial_size,
            decomp,
            grouping_factor,
            input_dimension: params.lwe_dimension,
        }
    }

    fn check_grouping(grouping_factor: usize, lwe_dimension: usize) {
        assert!(grouping_factor >= 1, "grouping factor must be positive");
        assert!(
            grouping_factor <= PbsKernel::MAX_GROUPING_FACTOR,
            "grouping factor exceeds the supported maximum"
        );
        assert!(grouping_factor <= lwe_dimension, "grouping factor exceeds the lwe dimension");
    }

    /// Input LWE dimension `n`.
    #[inline]
    pub fn input_dimension(&self) -> usize {
        self.input_dimension
    }

    /// Output LWE dimension `k·N` after sample extraction.
    #[inline]
    pub fn output_dimension(&self) -> usize {
        self.glwe_dimension * self.poly_size
    }

    /// Polynomial size `N`.
    #[inline]
    pub fn poly_size(&self) -> usize {
        self.poly_size
    }

    /// Secret bits collapsed per key entry.
    #[inline]
    pub fn grouping_factor(&self) -> usize {
        self.grouping_factor
    }

    /// Number of blind-rotation groups `⌈n/g⌉` (= external products per
    /// bootstrap).
    #[inline]
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The decomposition used by the external products.
    #[inline]
    pub fn decomposition(&self) -> DecompositionParams {
        self.decomp
    }

    /// The FFT plan shared by all external products.
    #[inline]
    pub fn fft(&self) -> &NegacyclicFft {
        &self.fft
    }

    /// Allocates a [`MultiBitPbsScratch`] sized to this key — one per
    /// thread, reused across every bootstrap that thread performs.
    pub fn scratch(&self) -> MultiBitPbsScratch {
        MultiBitPbsScratch::new(
            self.glwe_dimension,
            self.poly_size,
            self.decomp,
            self.grouping_factor,
        )
    }

    /// Total Fourier-domain key size in bytes — `2^g/g ×` the classical
    /// key (`Σ` over groups of `2^{m_i}` entries).
    pub fn byte_size(&self) -> usize {
        self.groups.iter().flatten().map(FourierGgsw::byte_size).sum()
    }

    /// Checks that a `(ciphertext, LUT)` pair matches this key's shape —
    /// identical validation to [`BootstrapKey::check_shape`].
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] naming the mismatch.
    pub fn check_shape(&self, ct: &LweCiphertext, lut: &Lut) -> Result<(), TfheError> {
        if ct.dimension() != self.input_dimension {
            return Err(TfheError::ParameterMismatch {
                what: "lwe dimension",
                left: ct.dimension(),
                right: self.input_dimension,
            });
        }
        if lut.poly_size() != self.poly_size {
            return Err(TfheError::ParameterMismatch {
                what: "polynomial size",
                left: lut.poly_size(),
                right: self.poly_size,
            });
        }
        Ok(())
    }

    /// Grouped blind rotation: rotates `lut` by the encrypted phase of
    /// `ct` in `⌈n/g⌉` external products.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on shape mismatch.
    pub fn blind_rotate(&self, ct: &LweCiphertext, lut: &Lut) -> Result<GlweCiphertext, TfheError> {
        let mut scratch = self.scratch();
        self.blind_rotate_with(ct, lut, &mut scratch)
    }

    /// As [`Self::blind_rotate`] with caller-provided scratch. A single
    /// job runs through the same grouped batch core as an epoch, so the
    /// single and batched paths are bit-identical by construction.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on shape mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` was sized for a different parameter set or
    /// grouping factor.
    pub fn blind_rotate_with(
        &self,
        ct: &LweCiphertext,
        lut: &Lut,
        scratch: &mut MultiBitPbsScratch,
    ) -> Result<GlweCiphertext, TfheError> {
        let jobs = [PbsJob { ct, lut }];
        let mut accs = self.blind_rotate_batch_core(&jobs, scratch, &mut NoProbe)?;
        // lint:allow(panic) batch core returns one accumulator per job
        Ok(accs.pop().expect("one job in, one accumulator out"))
    }

    /// Grouped blind rotation of a whole batch, key-major and
    /// job-blocked like the classical kernel: the outer loop walks the
    /// `⌈n/g⌉` groups, and within each group the batch is processed in
    /// blocks of [`CMUX_JOB_BLOCK`] jobs so a group's `2^g` pattern
    /// entries are streamed once per block rather than once per job.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on any shape mismatch.
    pub fn blind_rotate_batch(
        &self,
        jobs: &[PbsJob<'_>],
    ) -> Result<Vec<GlweCiphertext>, TfheError> {
        let mut scratch = self.scratch();
        self.blind_rotate_batch_with(jobs, &mut scratch)
    }

    /// As [`Self::blind_rotate_batch`] with caller-provided scratch.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on any shape mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` was sized for a different parameter set or
    /// grouping factor.
    pub fn blind_rotate_batch_with(
        &self,
        jobs: &[PbsJob<'_>],
        scratch: &mut MultiBitPbsScratch,
    ) -> Result<Vec<GlweCiphertext>, TfheError> {
        self.blind_rotate_batch_core(jobs, scratch, &mut NoProbe)
    }

    /// The single implementation behind every grouped blind-rotation
    /// entry point, generic over a [`Probe`] so the profiled and
    /// production paths cannot drift.
    fn blind_rotate_batch_core<P: Probe>(
        &self,
        jobs: &[PbsJob<'_>],
        scratch: &mut MultiBitPbsScratch,
        probe: &mut P,
    ) -> Result<Vec<GlweCiphertext>, TfheError> {
        let log2_two_n = self.poly_size.trailing_zeros() + 1;
        for job in jobs {
            self.check_shape(job.ct, job.lut)?;
        }
        scratch.check_shape(
            self.glwe_dimension,
            self.poly_size,
            self.decomp.level,
            self.grouping_factor,
        );

        // Initial rotation by each body (identical to the classical
        // kernel — only the mask handling differs between kernels).
        let mut accs: Vec<GlweCiphertext> = jobs
            .iter()
            .map(|job| {
                let b_tilde = modulus_switch(job.ct.body(), log2_two_n) as usize;
                GlweCiphertext::trivial(self.glwe_dimension, job.lut.poly().rotate_left(b_tilde))
            })
            .collect();

        // Epoch-wide hoisted modulus switch, entry-major exactly like
        // the classical batch path: bit `i`'s switched amounts for the
        // whole batch are one contiguous slice.
        let n_in = self.input_dimension;
        let batch = jobs.len();
        let mut switched = vec![0u32; batch * n_in];
        probe.time(PbsStage::ModSwitch, || {
            for (j, job) in jobs.iter().enumerate() {
                for (i, &a) in job.ct.mask().iter().enumerate() {
                    switched[i * batch + j] = modulus_switch(a, log2_two_n) as u32;
                }
            }
        });

        // Group-major, job-blocked grouped rotation: fetch group `gi`'s
        // pattern entries once per block of jobs.
        for (gi, entries) in self.groups.iter().enumerate() {
            let first_bit = gi * self.grouping_factor;
            let group_bits = entries.len().trailing_zeros() as usize;
            for (bi, accs_block) in accs.chunks_mut(CMUX_JOB_BLOCK).enumerate() {
                self.grouped_cmux_block(
                    entries,
                    first_bit,
                    group_bits,
                    &switched,
                    batch,
                    bi * CMUX_JOB_BLOCK,
                    accs_block,
                    scratch,
                    probe,
                );
            }
        }
        Ok(accs)
    }

    /// One blocked grouped-CMUX step: replaces every active accumulator
    /// of the block with `G_job ⊡ acc`, where `G_job` is the job's
    /// combined GGSW for this group. Four stages:
    ///
    /// 1. **Degrees** — per job, first an all-zero probe of the group's
    ///    digits (a job whose digits are all zero is skipped outright,
    ///    *before* any degree work: `G` would encrypt `X^0 = 1`, the
    ///    exact identity the classical kernel also takes on `ã = 0`),
    ///    then the `2^m` monomial degrees
    ///    `d_b = Σ_{t: b_t=1} ã_t mod 2N` by binary-counting recurrence
    ///    (`d_{b|bit} = d_b + ã_t`). A block with no active job returns
    ///    here.
    /// 2. **Assembly, pattern-major across the block** — seed each
    ///    job's combined spectrum with the pattern-0 entry (its degree
    ///    is always 0: a plane copy), then for every other pattern MAC
    ///    `entry_b × X^{d_b}` into it; the monomial spectrum is built
    ///    once per `(job, pattern)` and reused across all
    ///    `(k+1)·l · (k+1)` transforms. Pattern-major order streams
    ///    each key entry once per block.
    /// 3. **External product staging** — per job: gadget-decompose the
    ///    accumulator polynomials *directly* (no rotate-and-subtract —
    ///    the combined GGSW carries the rotation), one batched forward
    ///    transform, then the job-major VMA against the job's combined
    ///    spectrum (plane pointers hoisted once per job).
    /// 4. **Drain** — one batched inverse transform per job, fused with
    ///    the torus conversion, **replacing** the accumulator
    ///    (`acc ← G ⊡ acc`, not `acc += …`).
    #[allow(clippy::too_many_arguments)]
    // lint:hot-path-start — the blocked grouped CMUX kernel must stay allocation-free
    fn grouped_cmux_block<P: Probe>(
        &self,
        entries: &[FourierGgsw],
        first_bit: usize,
        group_bits: usize,
        switched: &[u32],
        batch: usize,
        job0: usize,
        accs: &mut [GlweCiphertext],
        scratch: &mut MultiBitPbsScratch,
        probe: &mut P,
    ) {
        debug_assert!(accs.len() <= CMUX_JOB_BLOCK);
        let k = self.glwe_dimension;
        let n = self.poly_size;
        let two_n = 2 * n;
        let level = self.decomp.level;
        let cols = k + 1;
        let rows = cols * level;
        let patterns = 1usize << group_bits;
        let MultiBitPbsScratch {
            decomp_state,
            all_digits,
            digit_batch,
            acc_batch,
            comb_batch,
            mono_re,
            mono_im,
            degrees,
            time_batch,
            ..
        } = scratch;

        // Stage 1: active flags, then monomial degrees for active jobs
        // only. The all-zero probe runs *before* the `2^m` degree
        // recurrence: a job whose group digits are all zero would
        // assemble `G = GGSW(X^0·Σ m_b) = GGSW(1)`, the exact identity
        // the classical kernel also skips on `ã = 0`, so neither the
        // recurrence nor any later stage needs to touch it.
        let mut active = [false; CMUX_JOB_BLOCK];
        let mut any_active = false;
        probe.time(PbsStage::ModSwitch, || {
            for (j, slot) in active.iter_mut().enumerate().take(accs.len()) {
                let digits =
                    (0..group_bits).map(|t| switched[(first_bit + t) * batch + job0 + j] as usize);
                if digits.clone().all(|a| a == 0) {
                    continue;
                }
                *slot = true;
                any_active = true;
                let d = &mut degrees[j * patterns..(j + 1) * patterns];
                d[0] = 0;
                for (t, a) in digits.enumerate() {
                    let bit = 1usize << t;
                    for b in 0..bit {
                        d[bit | b] = (d[b] + a) & (two_n - 1);
                    }
                }
            }
        });
        // A fully idle block (common in sparse-mask workloads) pays for
        // nothing beyond the probe above.
        if !any_active {
            return;
        }

        // Stage 2: assemble each active job's combined GGSW spectrum.
        // Plane base pointers are hoisted out of the transform walk:
        // one `planes()` borrow per `(pattern, job)` and a
        // `chunks_exact` sweep, instead of `rows·cols` bounds-computed
        // `transform()` calls per MAC.
        let half = mono_re.len();
        probe.time(PbsStage::VectorMultiply, || {
            for (j, comb) in comb_batch.iter_mut().enumerate().take(accs.len()) {
                if active[j] {
                    comb.copy_from(entries[0].spectra());
                }
            }
            for (pattern, entry) in entries.iter().enumerate().skip(1) {
                let (e_re_plane, e_im_plane) = entry.spectra().planes();
                for (j, comb) in comb_batch.iter_mut().enumerate().take(accs.len()) {
                    if !active[j] {
                        continue;
                    }
                    self.mono
                        .spectrum_into(degrees[j * patterns + pattern], mono_re, mono_im)
                        // lint:allow(panic) shape invariant established at construction
                        .expect("monomial planes are sized to the fft plan");
                    let (c_re_plane, c_im_plane) = comb.planes_mut();
                    let chunks = c_re_plane
                        .chunks_exact_mut(half)
                        .zip(c_im_plane.chunks_exact_mut(half))
                        .zip(e_re_plane.chunks_exact(half).zip(e_im_plane.chunks_exact(half)));
                    for ((c_re, c_im), (e_re, e_im)) in chunks {
                        self.fft.pointwise_mul_add_soa(c_re, c_im, e_re, e_im, mono_re, mono_im);
                    }
                }
            }
        });

        // Stage 3a: decompose the accumulators directly and transform.
        for (j, acc) in accs.iter().enumerate() {
            if !active[j] {
                continue;
            }
            probe.time(PbsStage::Decompose, || {
                for (p, poly) in acc.polys().enumerate() {
                    self.decomp.decompose_polynomial_levels(
                        poly,
                        &mut all_digits[p * level * n..(p + 1) * level * n],
                        decomp_state,
                    );
                }
            });
            probe.time(PbsStage::Fft, || {
                self.fft
                    .forward_i64_many(all_digits, &mut digit_batch[j])
                    // lint:allow(panic) shape invariant established at construction
                    .expect("digit batch matches the fft plan");
            });
        }

        // Stage 3b: VMA, job-major. Unlike the classical kernel — whose
        // row-major-across-jobs order reuses one shared key row for the
        // whole block — the combined spectrum here is *per job*, so
        // row-major order has nothing to reuse and only re-derives the
        // three spectra's plane pointers every row. Job-major hoists
        // them once per job; per accumulator column the additions still
        // run over `r` in ascending order, so results stay bit-identical
        // to the row-major schedule (the per-job accumulators are
        // disjoint).
        probe.time(PbsStage::VectorMultiply, || {
            for j in 0..accs.len() {
                if !active[j] {
                    continue;
                }
                acc_batch[j].fill_zero();
                let (d_re_plane, d_im_plane) = digit_batch[j].planes();
                let (k_re_plane, k_im_plane) = comb_batch[j].planes();
                let (a_re_plane, a_im_plane) = acc_batch[j].planes_mut();
                for r in 0..rows {
                    let d_re = &d_re_plane[r * half..(r + 1) * half];
                    let d_im = &d_im_plane[r * half..(r + 1) * half];
                    for col in 0..cols {
                        let s = (r * cols + col) * half;
                        let k_re = &k_re_plane[s..s + half];
                        let k_im = &k_im_plane[s..s + half];
                        let a_re = &mut a_re_plane[col * half..(col + 1) * half];
                        let a_im = &mut a_im_plane[col * half..(col + 1) * half];
                        self.fft.pointwise_mul_add_soa(a_re, a_im, d_re, d_im, k_re, k_im);
                    }
                }
            }
        });

        // Stage 4: batched inverse, fused torus conversion, *replacing*
        // the accumulator.
        for (j, acc) in accs.iter_mut().enumerate() {
            if !active[j] {
                continue;
            }
            probe.time(PbsStage::IfftAccumulate, || {
                self.fft
                    .backward_f64_many(&mut acc_batch[j], time_batch)
                    // lint:allow(panic) shape invariant established at construction
                    .expect("accumulator batch matches the fft plan");
                for (col, time) in time_batch.chunks_exact(n).enumerate() {
                    // lint:allow(panic) shape invariant established at construction
                    let poly = acc.poly_mut(col).expect("column within GLWE dimension");
                    for (o, &v) in poly.coeffs_mut().iter_mut().zip(time) {
                        *o = f64_to_torus(v);
                    }
                }
            });
        }
    }
    // lint:hot-path-end

    /// Batched multi-bit programmable bootstrap: grouped blind rotation
    /// followed by per-job sample extraction, in job order.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on any shape mismatch.
    pub fn bootstrap_batch(&self, jobs: &[PbsJob<'_>]) -> Result<Vec<LweCiphertext>, TfheError> {
        Ok(self.blind_rotate_batch(jobs)?.iter().map(GlweCiphertext::sample_extract).collect())
    }

    /// As [`Self::bootstrap_batch`] with per-stage timing
    /// instrumentation over the production grouped path — the same
    /// kernel the un-instrumented batch runs, observed through a
    /// timing probe (combined-GGSW assembly and the VMA both account
    /// to [`PbsStage::VectorMultiply`]; monomial-degree computation to
    /// [`PbsStage::ModSwitch`]).
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on any shape mismatch.
    pub fn bootstrap_batch_profiled(
        &self,
        jobs: &[PbsJob<'_>],
        timings: &mut StageTimings,
    ) -> Result<Vec<LweCiphertext>, TfheError> {
        let mut scratch = self.scratch();
        let mut probe = TimingProbe(timings);
        let accs = self.blind_rotate_batch_core(jobs, &mut scratch, &mut probe)?;
        Ok(probe.time(PbsStage::SampleExtract, || {
            accs.iter().map(GlweCiphertext::sample_extract).collect()
        }))
    }

    /// Parallel multi-bit epoch execution: contiguous balanced shards,
    /// one scratch per worker, results in job order — the same
    /// scheduling contract as [`BootstrapKey::bootstrap_batch_parallel`]
    /// and bit-identical to the sequential [`Self::bootstrap_batch`].
    ///
    /// `threads` is clamped to `[1, jobs.len()]`.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] if any job's shape
    /// disagrees with the key (validated before any thread spawns).
    pub fn bootstrap_batch_parallel(
        &self,
        jobs: &[PbsJob<'_>],
        threads: usize,
    ) -> Result<Vec<LweCiphertext>, TfheError> {
        for job in jobs {
            self.check_shape(job.ct, job.lut)?;
        }
        let threads = threads.max(1).min(jobs.len());
        if threads <= 1 {
            return self.bootstrap_batch(jobs);
        }
        let base = jobs.len() / threads;
        let extra = jobs.len() % threads;
        let shards: Vec<Result<Vec<LweCiphertext>, TfheError>> = std::thread::scope(|scope| {
            let mut start = 0;
            let handles: Vec<_> = (0..threads)
                .map(|i| {
                    let len = base + usize::from(i < extra);
                    let shard = &jobs[start..start + len];
                    start += len;
                    scope.spawn(move || self.bootstrap_batch(shard))
                })
                .collect();
            // lint:allow(panic) a worker panic is propagated, not swallowed
            handles.into_iter().map(|h| h.join().expect("PBS shard worker panicked")).collect()
        });
        let mut out = Vec::with_capacity(jobs.len());
        for shard in shards {
            out.extend(shard?);
        }
        Ok(out)
    }

    /// Full multi-bit programmable bootstrap of a single ciphertext.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on shape mismatch.
    pub fn bootstrap(&self, ct: &LweCiphertext, lut: &Lut) -> Result<LweCiphertext, TfheError> {
        Ok(self.blind_rotate(ct, lut)?.sample_extract())
    }
}

/// Encodes a boolean as `±1/8` on the torus (gate-bootstrapping
/// convention): `true ↦ +1/8`, `false ↦ −1/8`.
///
/// The call `encode_fraction(±1, 3)` reads as "±1 over 2³" — the
/// second argument is the **log2 of the denominator**, so this is
/// exactly the `±1/8` the convention asks for (not `±1/3`).
///
/// ```
/// use strix_tfhe::bootstrap::{decode_bool, encode_bool};
/// use strix_tfhe::torus::encode_fraction;
///
/// // +1/8 of the torus is 2^64/8 = 2^61; −1/8 is its wrapping negation.
/// assert_eq!(encode_bool(true), 1u64 << 61);
/// assert_eq!(encode_bool(true), encode_fraction(1, 3));
/// assert_eq!(encode_bool(false), (1u64 << 61).wrapping_neg());
/// assert!(decode_bool(encode_bool(true)));
/// assert!(!decode_bool(encode_bool(false)));
/// ```
#[inline]
pub fn encode_bool(b: bool) -> u64 {
    if b {
        encode_fraction(1, 3)
    } else {
        encode_fraction(-1, 3)
    }
}

/// Decodes a phase to a boolean by its torus sign.
#[inline]
pub fn decode_bool(phase: u64) -> bool {
    (phase as i64) > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::torus::decode_message;

    struct Fixture {
        params: TfheParameters,
        lwe_sk: LweSecretKey,
        glwe_sk: GlweSecretKey,
        extracted: LweSecretKey,
        bsk: BootstrapKey,
        rng: NoiseSampler,
    }

    fn fixture(params: TfheParameters) -> Fixture {
        let mut rng = NoiseSampler::from_seed(4242);
        let lwe_sk = LweSecretKey::generate(params.lwe_dimension, &mut rng);
        let glwe_sk =
            GlweSecretKey::generate(params.glwe_dimension, params.polynomial_size, &mut rng);
        let extracted = glwe_sk.to_extracted_lwe_key();
        let bsk = BootstrapKey::generate(&lwe_sk, &glwe_sk, &params, &mut rng);
        Fixture { params, lwe_sk, glwe_sk, extracted, bsk, rng }
    }

    #[test]
    fn lut_sign_shape() {
        let lut = Lut::sign(64, encode_fraction(1, 3));
        assert!(lut.poly().coeffs().iter().all(|&c| c == encode_fraction(1, 3)));
    }

    #[test]
    fn lut_from_function_rejects_oversized_space() {
        assert!(Lut::from_function(64, 7, |m| m).is_err());
        assert!(Lut::from_function(64, 6, |m| m).is_ok());
    }

    #[test]
    fn bootstrap_refreshes_sign_encoding() {
        let fx = &mut fixture(TfheParameters::testing_fast());
        for b in [true, false] {
            let ct = fx.lwe_sk.encrypt(encode_bool(b), fx.params.lwe_noise_std, &mut fx.rng);
            let lut = Lut::sign(fx.params.polynomial_size, encode_fraction(1, 3));
            let out = fx.bsk.bootstrap(&ct, &lut).unwrap();
            assert_eq!(out.dimension(), fx.bsk.output_dimension());
            let phase = fx.extracted.decrypt_phase(&out).unwrap();
            assert_eq!(decode_bool(phase), b, "b={b}");
        }
    }

    #[test]
    fn bootstrap_evaluates_identity_lut() {
        let fx = &mut fixture(TfheParameters::testing_fast());
        let p = 2u32; // 2-bit messages
        let lut = Lut::from_function(fx.params.polynomial_size, p, |m| m).unwrap();
        for m in 0..4u64 {
            let pt = m << (64 - p - 1);
            let ct = fx.lwe_sk.encrypt(pt, fx.params.lwe_noise_std, &mut fx.rng);
            let out = fx.bsk.bootstrap(&ct, &lut).unwrap();
            let phase = fx.extracted.decrypt_phase(&out).unwrap();
            assert_eq!(decode_message(phase, p + 1), m, "m={m}");
        }
    }

    #[test]
    fn bootstrap_evaluates_nontrivial_lut() {
        let fx = &mut fixture(TfheParameters::testing_fast());
        let p = 2u32;
        let f = |m: u64| (3 * m + 1) % 4;
        let lut = Lut::from_function(fx.params.polynomial_size, p, f).unwrap();
        for m in 0..4u64 {
            let pt = m << (64 - p - 1);
            let ct = fx.lwe_sk.encrypt(pt, fx.params.lwe_noise_std, &mut fx.rng);
            let out = fx.bsk.bootstrap(&ct, &lut).unwrap();
            let phase = fx.extracted.decrypt_phase(&out).unwrap();
            assert_eq!(decode_message(phase, p + 1), f(m), "m={m}");
        }
    }

    #[test]
    fn bootstrap_works_with_k2_parameters() {
        let fx = &mut fixture(TfheParameters::testing_k2());
        let lut = Lut::sign(fx.params.polynomial_size, encode_fraction(1, 3));
        for b in [true, false] {
            let ct = fx.lwe_sk.encrypt(encode_bool(b), fx.params.lwe_noise_std, &mut fx.rng);
            let out = fx.bsk.bootstrap(&ct, &lut).unwrap();
            assert_eq!(out.dimension(), 2 * fx.params.polynomial_size);
            let phase = fx.extracted.decrypt_phase(&out).unwrap();
            assert_eq!(decode_bool(phase), b);
        }
    }

    #[test]
    fn blind_rotate_output_decrypts_under_glwe_key() {
        let fx = &mut fixture(TfheParameters::testing_fast());
        let ct = fx.lwe_sk.encrypt(encode_bool(true), fx.params.lwe_noise_std, &mut fx.rng);
        let lut = Lut::sign(fx.params.polynomial_size, encode_fraction(1, 3));
        let acc = fx.bsk.blind_rotate(&ct, &lut).unwrap();
        let phase = fx.glwe_sk.decrypt_phase(&acc).unwrap();
        assert!(decode_bool(phase[0]));
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let fx = &mut fixture(TfheParameters::testing_fast());
        let lut = Lut::sign(fx.params.polynomial_size, encode_fraction(1, 3));
        let wrong = LweCiphertext::trivial(10, 0);
        assert!(fx.bsk.blind_rotate(&wrong, &lut).is_err());
        let wrong_lut = Lut::sign(fx.params.polynomial_size * 2, 1);
        let ct = LweCiphertext::trivial(fx.params.lwe_dimension, 0);
        assert!(fx.bsk.blind_rotate(&ct, &wrong_lut).is_err());
    }

    #[test]
    fn profiled_bootstrap_accounts_blind_rotation_dominant() {
        let fx = &mut fixture(TfheParameters::testing_fast());
        let ct = fx.lwe_sk.encrypt(encode_bool(true), fx.params.lwe_noise_std, &mut fx.rng);
        let lut = Lut::sign(fx.params.polynomial_size, encode_fraction(1, 3));
        let mut t = StageTimings::new();
        let _ = fx.bsk.bootstrap_profiled(&ct, &lut, &mut t).unwrap();
        // The paper reports ~98% of PBS inside the blind rotation; even
        // at toy sizes it must clearly dominate.
        assert!(t.blind_rotation_fraction() > 0.8, "{}", t.blind_rotation_fraction());
    }

    #[test]
    fn key_size_matches_parameter_formula() {
        let params = TfheParameters::testing_fast();
        let fx = fixture(params.clone());
        assert_eq!(fx.bsk.byte_size(), params.bootstrap_key_bytes());
    }

    #[test]
    fn bool_encoding_round_trip() {
        assert!(decode_bool(encode_bool(true)));
        assert!(!decode_bool(encode_bool(false)));
    }

    #[test]
    fn batched_bootstrap_matches_single_per_job() {
        // Key-major iteration must be arithmetically identical to the
        // ciphertext-major single path — same products, same order of
        // additions per accumulator.
        let fx = &mut fixture(TfheParameters::testing_fast());
        let p = 2u32;
        let lut_id = Lut::from_function(fx.params.polynomial_size, p, |m| m).unwrap();
        let lut_sq = Lut::from_function(fx.params.polynomial_size, p, |m| (m * m) % 4).unwrap();
        let cts: Vec<LweCiphertext> = (0..4u64)
            .map(|m| fx.lwe_sk.encrypt(m << (64 - p - 1), fx.params.lwe_noise_std, &mut fx.rng))
            .collect();
        let jobs: Vec<PbsJob<'_>> = cts
            .iter()
            .enumerate()
            .map(|(i, ct)| PbsJob { ct, lut: if i % 2 == 0 { &lut_id } else { &lut_sq } })
            .collect();
        let batched = fx.bsk.bootstrap_batch(&jobs).unwrap();
        for (job, out) in jobs.iter().zip(&batched) {
            let single = fx.bsk.bootstrap(job.ct, job.lut).unwrap();
            assert_eq!(out, &single);
        }
        // And the results are still correct.
        for (m, out) in batched.iter().enumerate() {
            let phase = fx.extracted.decrypt_phase(out).unwrap();
            let expected = if m % 2 == 0 { m as u64 } else { ((m * m) % 4) as u64 };
            assert_eq!(decode_message(phase, p + 1), expected, "m={m}");
        }
    }

    #[test]
    fn parallel_bootstrap_is_bit_identical_to_sequential() {
        let fx = &mut fixture(TfheParameters::testing_fast());
        let p = 2u32;
        let lut_id = Lut::from_function(fx.params.polynomial_size, p, |m| m).unwrap();
        let lut_sq = Lut::from_function(fx.params.polynomial_size, p, |m| (m * m) % 4).unwrap();
        // 7 jobs: does not divide evenly by 2, 3, 4, 5 or 6 threads.
        let cts: Vec<LweCiphertext> = (0..7u64)
            .map(|m| {
                fx.lwe_sk.encrypt((m % 4) << (64 - p - 1), fx.params.lwe_noise_std, &mut fx.rng)
            })
            .collect();
        let jobs: Vec<PbsJob<'_>> = cts
            .iter()
            .enumerate()
            .map(|(i, ct)| PbsJob { ct, lut: if i % 2 == 0 { &lut_id } else { &lut_sq } })
            .collect();
        let sequential = fx.bsk.bootstrap_batch(&jobs).unwrap();
        for threads in 1..=8 {
            let parallel = fx.bsk.bootstrap_batch_parallel(&jobs, threads).unwrap();
            assert_eq!(parallel, sequential, "threads={threads}");
        }
        // Degenerate thread counts are clamped, not errors.
        assert_eq!(fx.bsk.bootstrap_batch_parallel(&jobs, 0).unwrap(), sequential);
        assert_eq!(fx.bsk.bootstrap_batch_parallel(&jobs, 100).unwrap(), sequential);
        assert!(fx.bsk.bootstrap_batch_parallel(&[], 4).unwrap().is_empty());
    }

    #[test]
    fn parallel_bootstrap_rejects_shape_mismatch_before_spawning() {
        let fx = &mut fixture(TfheParameters::testing_fast());
        let lut = Lut::sign(fx.params.polynomial_size, encode_fraction(1, 3));
        let good = LweCiphertext::trivial(fx.params.lwe_dimension, 0);
        let bad = LweCiphertext::trivial(10, 0);
        let jobs = [PbsJob { ct: &good, lut: &lut }, PbsJob { ct: &bad, lut: &lut }];
        assert!(fx.bsk.bootstrap_batch_parallel(&jobs, 2).is_err());
    }

    #[test]
    fn scratch_reuse_across_bootstraps_is_bit_identical() {
        let fx = &mut fixture(TfheParameters::testing_fast());
        let lut = Lut::sign(fx.params.polynomial_size, encode_fraction(1, 3));
        let mut scratch = fx.bsk.scratch();
        for b in [true, false, true] {
            let ct = fx.lwe_sk.encrypt(encode_bool(b), fx.params.lwe_noise_std, &mut fx.rng);
            let fresh = fx.bsk.blind_rotate(&ct, &lut).unwrap();
            let reused = fx.bsk.blind_rotate_with(&ct, &lut, &mut scratch).unwrap();
            assert_eq!(reused, fresh);
        }
    }

    #[test]
    #[should_panic(expected = "scratch polynomial size mismatch")]
    fn wrong_scratch_shape_panics() {
        let fx = &mut fixture(TfheParameters::testing_fast());
        let lut = Lut::sign(fx.params.polynomial_size, encode_fraction(1, 3));
        let ct = LweCiphertext::trivial(fx.params.lwe_dimension, 0);
        let mut wrong = crate::scratch::PbsScratch::new(
            fx.params.glwe_dimension,
            fx.params.polynomial_size * 2,
            fx.bsk.decomposition(),
        );
        let _ = fx.bsk.blind_rotate_with(&ct, &lut, &mut wrong);
    }

    #[test]
    fn batched_bootstrap_rejects_shape_mismatch() {
        let fx = &mut fixture(TfheParameters::testing_fast());
        let lut = Lut::sign(fx.params.polynomial_size, encode_fraction(1, 3));
        let good = LweCiphertext::trivial(fx.params.lwe_dimension, 0);
        let bad = LweCiphertext::trivial(10, 0);
        let jobs = [PbsJob { ct: &good, lut: &lut }, PbsJob { ct: &bad, lut: &lut }];
        assert!(fx.bsk.bootstrap_batch(&jobs).is_err());
        assert!(fx.bsk.bootstrap_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn benchmark_key_has_real_key_shape_and_runs() {
        let params = TfheParameters::testing_fast();
        let bsk = BootstrapKey::generate_for_benchmark(&params);
        assert_eq!(bsk.input_dimension(), params.lwe_dimension);
        assert_eq!(bsk.byte_size(), params.bootstrap_key_bytes());
        // PBS must execute (timing-equivalent arithmetic), whatever the
        // output decrypts to.
        let ct = LweCiphertext::trivial(params.lwe_dimension, encode_bool(true));
        let lut = Lut::sign(params.polynomial_size, encode_fraction(1, 3));
        let out = bsk.bootstrap(&ct, &lut).unwrap();
        assert_eq!(out.dimension(), bsk.output_dimension());
    }

    fn multi_bit_key(fx: &mut Fixture, g: usize) -> MultiBitBootstrapKey {
        MultiBitBootstrapKey::generate(&fx.lwe_sk, &fx.glwe_sk, &fx.params, g, &mut fx.rng)
    }

    #[test]
    fn multi_bit_key_size_matches_parameter_formula() {
        let params = TfheParameters::testing_fast();
        let fx = &mut fixture(params.clone());
        for g in [2usize, 3] {
            let mbsk = multi_bit_key(fx, g);
            assert_eq!(mbsk.grouping_factor(), g);
            assert_eq!(mbsk.group_count(), params.multi_bit_group_count(g));
            assert_eq!(mbsk.byte_size(), params.multi_bit_bootstrap_key_bytes(g), "g={g}");
            assert_eq!(mbsk.input_dimension(), params.lwe_dimension);
            assert_eq!(mbsk.output_dimension(), params.extracted_lwe_dimension());
        }
    }

    #[test]
    fn multi_bit_bootstrap_decrypts_like_classical() {
        // Not bit-identical — a genuinely different kernel — but the
        // decoded messages must agree with the classical path on every
        // input of the message space.
        let fx = &mut fixture(TfheParameters::testing_fast());
        let mbsk = multi_bit_key(fx, 2);
        let p = 2u32;
        let f = |m: u64| (3 * m + 1) % 4;
        let lut = Lut::from_function(fx.params.polynomial_size, p, f).unwrap();
        for m in 0..4u64 {
            let pt = m << (64 - p - 1);
            let ct = fx.lwe_sk.encrypt(pt, fx.params.lwe_noise_std, &mut fx.rng);
            let classical = fx.bsk.bootstrap(&ct, &lut).unwrap();
            let multi_bit = mbsk.bootstrap(&ct, &lut).unwrap();
            let pc = fx.extracted.decrypt_phase(&classical).unwrap();
            let pm = fx.extracted.decrypt_phase(&multi_bit).unwrap();
            assert_eq!(decode_message(pm, p + 1), decode_message(pc, p + 1), "m={m}");
            assert_eq!(decode_message(pm, p + 1), f(m), "m={m}");
        }
    }

    #[test]
    fn multi_bit_zero_rotation_job_is_exact_passthrough() {
        // A trivial ciphertext with all-zero mask and body skips every
        // group: the accumulator must come back exactly as initialised,
        // bit-identical to what the classical kernel produces.
        let fx = &mut fixture(TfheParameters::testing_fast());
        let mbsk = multi_bit_key(fx, 2);
        let lut = Lut::sign(fx.params.polynomial_size, encode_fraction(1, 3));
        let ct = LweCiphertext::trivial(fx.params.lwe_dimension, 0);
        let grouped = mbsk.blind_rotate(&ct, &lut).unwrap();
        let classical = fx.bsk.blind_rotate(&ct, &lut).unwrap();
        assert_eq!(grouped, classical);
    }

    #[test]
    fn multi_bit_batch_matches_single_per_job() {
        let fx = &mut fixture(TfheParameters::testing_fast());
        let mbsk = multi_bit_key(fx, 2);
        let p = 2u32;
        let lut = Lut::from_function(fx.params.polynomial_size, p, |m| m).unwrap();
        let cts: Vec<LweCiphertext> = (0..5u64)
            .map(|m| {
                fx.lwe_sk.encrypt((m % 4) << (64 - p - 1), fx.params.lwe_noise_std, &mut fx.rng)
            })
            .collect();
        let jobs: Vec<PbsJob<'_>> = cts.iter().map(|ct| PbsJob { ct, lut: &lut }).collect();
        let batched = mbsk.bootstrap_batch(&jobs).unwrap();
        for (job, out) in jobs.iter().zip(&batched) {
            assert_eq!(out, &mbsk.bootstrap(job.ct, job.lut).unwrap());
        }
    }

    #[test]
    fn multi_bit_shape_mismatch_is_reported() {
        let fx = &mut fixture(TfheParameters::testing_fast());
        let mbsk = multi_bit_key(fx, 2);
        let lut = Lut::sign(fx.params.polynomial_size, encode_fraction(1, 3));
        let wrong = LweCiphertext::trivial(10, 0);
        assert!(mbsk.blind_rotate(&wrong, &lut).is_err());
        let wrong_lut = Lut::sign(fx.params.polynomial_size * 2, 1);
        let ct = LweCiphertext::trivial(fx.params.lwe_dimension, 0);
        assert!(mbsk.blind_rotate(&ct, &wrong_lut).is_err());
    }

    #[test]
    #[should_panic(expected = "scratch grouping factor mismatch")]
    fn multi_bit_wrong_scratch_grouping_panics() {
        let fx = &mut fixture(TfheParameters::testing_fast());
        let mbsk = multi_bit_key(fx, 2);
        let lut = Lut::sign(fx.params.polynomial_size, encode_fraction(1, 3));
        let ct = LweCiphertext::trivial(fx.params.lwe_dimension, 0);
        let mut wrong = crate::scratch::MultiBitPbsScratch::new(
            fx.params.glwe_dimension,
            fx.params.polynomial_size,
            mbsk.decomposition(),
            3,
        );
        let _ = mbsk.blind_rotate_with(&ct, &lut, &mut wrong);
    }

    #[test]
    fn multi_bit_benchmark_key_has_real_shape_and_runs() {
        let params = TfheParameters::testing_fast();
        for g in [2usize, 3] {
            let mbsk = MultiBitBootstrapKey::generate_for_benchmark(&params, g);
            assert_eq!(mbsk.byte_size(), params.multi_bit_bootstrap_key_bytes(g), "g={g}");
            let ct = LweCiphertext::trivial(params.lwe_dimension, encode_bool(true));
            let lut = Lut::sign(params.polynomial_size, encode_fraction(1, 3));
            let out = mbsk.bootstrap(&ct, &lut).unwrap();
            assert_eq!(out.dimension(), mbsk.output_dimension());
        }
    }
}
