//! GGSW ciphertexts and the external product.
//!
//! The bootstrapping key is a vector of `n` GGSW ciphertexts, each a
//! `(k+1)·l_b × (k+1)` matrix of degree-`N−1` polynomials (§II-D). The
//! external product `GGSW(s) ⊡ GLWE(μ) ≈ GLWE(s·μ)` is the inner loop of
//! blind rotation (Algorithm 1 lines 7–10): gadget-decompose the GLWE,
//! transform the digit polynomials, multiply–accumulate against the
//! Fourier-domain key rows, and transform back.
//!
//! Two evaluation paths are provided:
//!
//! * [`FourierGgsw::external_product`] — the FFT path used in production
//!   and modelled by the Strix PBS cluster (decomposer → FFT → VMA →
//!   IFFT → accumulator),
//! * [`GgswCiphertext::external_product_exact`] — an exact integer path
//!   used as the correctness oracle in tests.

use strix_fft::{Complex64, NegacyclicFft, SoaSpectrum};

use crate::decompose::DecompositionParams;
use crate::glwe::{GlweCiphertext, GlweSecretKey};
use crate::poly::TorusPolynomial;
use crate::profiler::{NoProbe, PbsStage, Probe, StageTimings, TimingProbe};
use crate::rng::NoiseSampler;
use crate::scratch::ExternalProductScratch;
use crate::torus::{f64_to_torus, torus_to_f64_signed};

/// A GGSW ciphertext in the standard (time) domain: `(k+1)·l` GLWE rows.
///
/// Row `(j, lvl)` is a GLWE encryption of zero with `m · q/B^{lvl+1}`
/// added to polynomial `j` (the gadget matrix `m·G`).
#[derive(Clone, Debug)]
pub struct GgswCiphertext {
    rows: Vec<GlweCiphertext>,
    decomp: DecompositionParams,
    glwe_dimension: usize,
}

impl GgswCiphertext {
    /// Encrypts a small scalar (in blind rotation: a secret-key bit).
    pub fn encrypt_scalar(
        message: u64,
        glwe_sk: &GlweSecretKey,
        decomp: DecompositionParams,
        noise_std: f64,
        rng: &mut NoiseSampler,
    ) -> Self {
        let k = glwe_sk.dimension();
        let n = glwe_sk.poly_size();
        let zero = TorusPolynomial::zero(n);
        let mut rows = Vec::with_capacity((k + 1) * decomp.level);
        for j in 0..=k {
            for lvl in 1..=decomp.level {
                let mut row = glwe_sk.encrypt(&zero, noise_std, rng);
                let scale = decomp.gadget_scale(lvl);
                // lint:allow(panic) shape invariant established at construction
                let target = row.poly_mut(j).expect("row index within GLWE dimension");
                target[0] = target[0].wrapping_add(message.wrapping_mul(scale));
                rows.push(row);
            }
        }
        Self { rows, decomp, glwe_dimension: k }
    }

    /// Seeded encryption of a small scalar: every mask polynomial is
    /// drawn from the shared CRS stream `crs`, so only the body
    /// polynomials (one per row) have to ship — a `(k+1)×` transport
    /// compression of the bootstrapping key.
    ///
    /// The gadget term cannot be folded into a CRS mask (the receiver
    /// must regenerate masks from the seed alone), so each row instead
    /// encrypts the gadget's *phase contribution* directly: row
    /// `(j, lvl)` with `j < k` is a GLWE encryption of
    /// `−m·q/B^{lvl+1}·S_j`, and the body row `j = k` encrypts the
    /// constant `m·q/B^{lvl+1}`. Both have exactly the phase of the
    /// classical row (`encrypt_scalar` adds the gadget to polynomial
    /// `j`, which shifts the phase by the same amount), so the external
    /// product is oblivious to which generation path produced the key.
    pub(crate) fn encrypt_scalar_seeded(
        message: u64,
        glwe_sk: &GlweSecretKey,
        decomp: DecompositionParams,
        noise_std: f64,
        noise_rng: &mut NoiseSampler,
        crs: &mut NoiseSampler,
    ) -> Self {
        let k = glwe_sk.dimension();
        let n = glwe_sk.poly_size();
        let mut rows = Vec::with_capacity((k + 1) * decomp.level);
        for j in 0..=k {
            for lvl in 1..=decomp.level {
                let gadget = message.wrapping_mul(decomp.gadget_scale(lvl));
                let mut msg = TorusPolynomial::zero(n);
                if j < k {
                    let key = glwe_sk.polys()[j].coeffs();
                    for (m, &s) in msg.coeffs_mut().iter_mut().zip(key) {
                        *m = gadget.wrapping_mul(s).wrapping_neg();
                    }
                } else {
                    msg[0] = gadget;
                }
                let masks = draw_crs_masks(k, n, crs);
                rows.push(glwe_sk.encrypt_with_mask(masks, &msg, noise_std, noise_rng));
            }
        }
        Self { rows, decomp, glwe_dimension: k }
    }

    /// Expansion half of seeded transport: regenerates the CRS masks in
    /// the draw order of [`Self::encrypt_scalar_seeded`] and attaches
    /// the stored body polynomials.
    ///
    /// # Panics
    ///
    /// Panics if `bodies` does not hold `(k+1)·l` rows (transport
    /// payload invariant).
    pub(crate) fn from_seeded_parts(
        bodies: &[TorusPolynomial],
        decomp: DecompositionParams,
        glwe_dimension: usize,
        crs: &mut NoiseSampler,
    ) -> Self {
        assert_eq!(bodies.len(), (glwe_dimension + 1) * decomp.level, "seeded ggsw row count");
        let rows = bodies
            .iter()
            .map(|body| {
                let masks = draw_crs_masks(glwe_dimension, body.size(), crs);
                GlweCiphertext::from_parts(masks, body.clone())
            })
            .collect();
        Self { rows, decomp, glwe_dimension }
    }

    /// A *trivial* (noiseless, zero-mask) GGSW encryption of `message`:
    /// rows carry only the gadget terms `m·q/B^{lvl+1}`. Useful for
    /// tests and for timing-equivalent benchmark keys — the arithmetic
    /// shape of the external product is identical to a real key's.
    pub fn trivial(
        message: u64,
        glwe_dimension: usize,
        poly_size: usize,
        decomp: DecompositionParams,
    ) -> Self {
        let mut rows = Vec::with_capacity((glwe_dimension + 1) * decomp.level);
        for j in 0..=glwe_dimension {
            for lvl in 1..=decomp.level {
                let mut row = GlweCiphertext::zero(glwe_dimension, poly_size);
                // lint:allow(panic) shape invariant established at construction
                let target = row.poly_mut(j).expect("row index within GLWE dimension");
                target[0] = message.wrapping_mul(decomp.gadget_scale(lvl));
                rows.push(row);
            }
        }
        Self { rows, decomp, glwe_dimension }
    }

    /// The GLWE rows, in `(j, lvl)` row-major order.
    #[inline]
    pub fn rows(&self) -> &[GlweCiphertext] {
        &self.rows
    }

    /// Decomposition parameters used by the gadget.
    #[inline]
    pub fn decomposition(&self) -> DecompositionParams {
        self.decomp
    }

    /// Exact (FFT-free) external product, the test oracle:
    /// `self ⊡ glwe ≈ GLWE(m · phase(glwe))`.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch (oracle-only code path).
    pub fn external_product_exact(&self, glwe: &GlweCiphertext) -> GlweCiphertext {
        let k = self.glwe_dimension;
        assert_eq!(glwe.dimension(), k, "glwe dimension mismatch");
        let n = glwe.poly_size();
        let mut acc = GlweCiphertext::zero(k, n);
        let mut row_idx = 0;
        for poly in glwe.polys() {
            let levels = self.decomp.decompose_polynomial(poly);
            for digits in levels.iter() {
                let row = &self.rows[row_idx];
                for col in 0..=k {
                    let row_poly = if col < k { &row.masks()[col] } else { row.body() };
                    let prod =
                        strix_fft::reference::negacyclic_mul_torus(digits, row_poly.coeffs());
                    // lint:allow(panic) shape invariant established at construction
                    let out = acc.poly_mut(col).expect("column within GLWE dimension");
                    for (o, p) in out.coeffs_mut().iter_mut().zip(&prod) {
                        *o = o.wrapping_add(*p);
                    }
                }
                row_idx += 1;
            }
        }
        acc
    }

    /// Converts to the Fourier domain for use in blind rotation. The
    /// resulting spectra are in `fft`'s digit-reversed slot order —
    /// globally consistent with every other spectrum produced under
    /// the same plan, which is the only way they are ever consumed —
    /// and are stored **split** (structure-of-arrays): one real plane
    /// and one imaginary plane per `(row, column)` polynomial, the
    /// layout the SIMD-friendly VMA kernels stream. The plane values
    /// are bit-for-bit the transform outputs, so both the split and
    /// the interleaved CMUX paths consume the same key bits.
    ///
    /// # Panics
    ///
    /// Panics if `fft.poly_size()` differs from the ciphertext's.
    pub fn to_fourier(&self, fft: &NegacyclicFft) -> FourierGgsw {
        let k = self.glwe_dimension;
        let half = fft.fourier_size();
        let mut spectra = SoaSpectrum::new(self.rows.len() * (k + 1), half);
        let mut spec = vec![Complex64::ZERO; half];
        let mut signed = vec![0.0f64; fft.poly_size()];
        for (r, row) in self.rows.iter().enumerate() {
            for (col, poly) in row.polys().enumerate() {
                for (s, &c) in signed.iter_mut().zip(poly.coeffs()) {
                    *s = torus_to_f64_signed(c);
                }
                fft.forward_f64(&signed, &mut spec)
                    // lint:allow(panic) shape invariant established at construction
                    .expect("ggsw polynomial size must match the fft plan");
                spectra.store(r * (k + 1) + col, &spec);
            }
        }
        FourierGgsw { spectra, decomp: self.decomp, glwe_dimension: k }
    }
}

/// Draws `k` uniform mask polynomials from a CRS stream — the shared
/// mask schedule of seeded generation and expansion.
fn draw_crs_masks(k: usize, n: usize, crs: &mut NoiseSampler) -> Vec<TorusPolynomial> {
    (0..k)
        .map(|_| {
            let mut m = TorusPolynomial::zero(n);
            crs.fill_uniform(m.coeffs_mut());
            m
        })
        .collect()
}

/// A GGSW ciphertext with every polynomial stored in the Fourier domain
/// (`N/2` complex points per polynomial) — the format in which Strix
/// streams bootstrapping keys from HBM, and in which Concrete stores
/// them in memory.
///
/// Spectra follow the transform plan's **bit-reversed (digit-reversed)
/// slot order**: [`GgswCiphertext::to_fourier`] produces them under
/// the same [`NegacyclicFft`] plan that later transforms the
/// decomposed digits, so the VMA's pointwise multiply lines up slot
/// for slot and no spectrum is ever reordered. A `FourierGgsw` is only
/// meaningful together with the plan that created it.
///
/// Storage is **split-complex** ([`SoaSpectrum`]): all `(k+1)·l·(k+1)`
/// polynomials live in two contiguous `f64` planes (real, imaginary),
/// row-major then column. This is the layout the blocked CMUX's
/// four-array VMA streams directly; the interleaved oracle path reads
/// the same planes through [`NegacyclicFft::pointwise_mul_add_key`], so both paths
/// consume identical key bits.
#[derive(Clone, Debug)]
pub struct FourierGgsw {
    /// Transform `row·(k+1) + col` holds the spectrum of row `row`
    /// (row-major `(j, lvl)` order), column `col`.
    spectra: SoaSpectrum,
    decomp: DecompositionParams,
    glwe_dimension: usize,
}

impl FourierGgsw {
    /// Decomposition parameters used by the gadget.
    #[inline]
    pub fn decomposition(&self) -> DecompositionParams {
        self.decomp
    }

    /// Number of GLWE rows (`(k+1)·l`).
    #[inline]
    pub fn row_count(&self) -> usize {
        self.spectra.count() / (self.glwe_dimension + 1)
    }

    /// The split `(re, im)` planes of the `(row, col)` polynomial's
    /// spectrum — the unit of key streaming in the CMUX VMA loops.
    ///
    /// # Panics
    ///
    /// Panics if `row`/`col` are out of range.
    #[inline]
    pub(crate) fn row_col(&self, row: usize, col: usize) -> (&[f64], &[f64]) {
        assert!(col <= self.glwe_dimension, "ggsw column out of range");
        self.spectra.transform(row * (self.glwe_dimension + 1) + col)
    }

    /// The full split-complex batch of this entry's spectra
    /// (`(k+1)·l·(k+1)` transforms, row-major then column) — the unit
    /// the multi-bit kernel streams when it MACs whole pattern entries
    /// into a combined GGSW.
    #[inline]
    pub(crate) fn spectra(&self) -> &SoaSpectrum {
        &self.spectra
    }

    /// Number of bytes this key entry occupies (the per-iteration HBM
    /// traffic of one blind-rotation step).
    pub fn byte_size(&self) -> usize {
        self.spectra.byte_size()
    }

    /// External product via the FFT (the interleaved per-job path):
    /// `self ⊡ glwe ≈ GLWE(m · phase(glwe))`. Allocates its own
    /// scratch; loops should use [`Self::external_product_scratch`].
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch (the bootstrap key constructor
    /// guarantees compatibility).
    pub fn external_product(&self, glwe: &GlweCiphertext, fft: &NegacyclicFft) -> GlweCiphertext {
        let mut scratch =
            ExternalProductScratch::new(self.glwe_dimension, glwe.poly_size(), self.decomp);
        let mut out = GlweCiphertext::zero(self.glwe_dimension, glwe.poly_size());
        self.external_product_scratch(glwe, fft, &mut out, &mut scratch);
        out
    }

    /// External product with per-stage timing instrumentation, used by
    /// the Figure-1 workload-breakdown harness. Same implementation as
    /// the production path, observed through a timing probe.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch.
    pub fn external_product_profiled(
        &self,
        glwe: &GlweCiphertext,
        fft: &NegacyclicFft,
        timings: &mut StageTimings,
    ) -> GlweCiphertext {
        let mut scratch =
            ExternalProductScratch::new(self.glwe_dimension, glwe.poly_size(), self.decomp);
        let mut out = GlweCiphertext::zero(self.glwe_dimension, glwe.poly_size());
        self.external_product_probed(glwe, fft, &mut out, &mut scratch, &mut TimingProbe(timings));
        out
    }

    /// Allocation-free external product writing into `out` using
    /// caller-provided scratch — the per-job oracle form driven by the
    /// scratch-based single blind rotation (the blocked batch path
    /// re-schedules the same arithmetic across jobs; this one is the
    /// bit-identity reference). Bit-identical to
    /// [`Self::external_product`]: same decompositions, same transform
    /// and multiply order, same rounding.
    ///
    /// # Panics
    ///
    /// Panics if `glwe`, `out`, `fft` or `scratch` disagree with the
    /// key's shape (the bootstrap key constructor and
    /// [`crate::scratch::PbsScratch`] guarantee compatibility).
    pub fn external_product_scratch(
        &self,
        glwe: &GlweCiphertext,
        fft: &NegacyclicFft,
        out: &mut GlweCiphertext,
        scratch: &mut ExternalProductScratch,
    ) {
        self.external_product_probed(glwe, fft, out, scratch, &mut NoProbe);
    }

    /// The single implementation behind every per-job external-product
    /// entry point, generic over a [`Probe`] so the profiled and
    /// production paths cannot drift.
    pub(crate) fn external_product_probed<P: Probe>(
        &self,
        glwe: &GlweCiphertext,
        fft: &NegacyclicFft,
        out: &mut GlweCiphertext,
        scratch: &mut ExternalProductScratch,
        probe: &mut P,
    ) {
        let k = self.glwe_dimension;
        assert_eq!(glwe.dimension(), k, "glwe dimension mismatch");
        assert_eq!(out.dimension(), k, "output glwe dimension mismatch");
        let n = glwe.poly_size();
        assert_eq!(out.poly_size(), n, "output polynomial size mismatch");
        assert_eq!(fft.poly_size(), n, "fft plan size mismatch");
        let level = self.decomp.level;
        scratch.check_shape(k, n, level);
        let half = fft.fourier_size();

        scratch.fourier_acc.fill(Complex64::ZERO);
        let mut row_idx = 0;
        for poly in glwe.polys() {
            probe.time(PbsStage::Decompose, || {
                self.decomp.decompose_polynomial_levels(
                    poly,
                    &mut scratch.digit_levels,
                    &mut scratch.decomp_state,
                );
            });
            for lvl in 0..level {
                probe.time(PbsStage::Fft, || {
                    let digits = &scratch.digit_levels[lvl * n..(lvl + 1) * n];
                    fft.forward_i64(digits, &mut scratch.digit_spec)
                        // lint:allow(panic) shape invariant established at construction
                        .expect("digit polynomial matches fft plan");
                });
                probe.time(PbsStage::VectorMultiply, || {
                    for (col, acc_col) in scratch.fourier_acc.chunks_mut(half).enumerate() {
                        let (key_re, key_im) = self.row_col(row_idx, col);
                        fft.pointwise_mul_add_key(acc_col, &scratch.digit_spec, key_re, key_im);
                    }
                });
                row_idx += 1;
            }
        }

        probe.time(PbsStage::IfftAccumulate, || {
            for (col, spec) in scratch.fourier_acc.chunks_mut(half).enumerate() {
                fft.backward_f64(spec, &mut scratch.time_domain)
                    // lint:allow(panic) shape invariant established at construction
                    .expect("accumulator matches fft plan");
                // lint:allow(panic) shape invariant established at construction
                let poly = out.poly_mut(col).expect("column within GLWE dimension");
                for (o, &v) in poly.coeffs_mut().iter_mut().zip(&scratch.time_domain) {
                    *o = f64_to_torus(v);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::torus::{decode_message, encode_fraction};

    const STD: f64 = 1.0e-12;

    struct Fixture {
        glwe_sk: GlweSecretKey,
        rng: NoiseSampler,
        fft: NegacyclicFft,
        decomp: DecompositionParams,
        k: usize,
        n: usize,
    }

    fn fixture(k: usize, n: usize) -> Fixture {
        let mut rng = NoiseSampler::from_seed(99);
        let glwe_sk = GlweSecretKey::generate(k, n, &mut rng);
        let fft = NegacyclicFft::new(n).unwrap();
        let decomp = DecompositionParams::new(10, 3);
        Fixture { glwe_sk, rng, fft, decomp, k, n }
    }

    fn test_message(n: usize) -> TorusPolynomial {
        TorusPolynomial::from_coeffs((0..n).map(|j| encode_fraction((j % 8) as i64, 4)).collect())
    }

    #[test]
    fn external_product_by_one_preserves_message() {
        let mut fx = fixture(1, 64);
        let ggsw = GgswCiphertext::encrypt_scalar(1, &fx.glwe_sk, fx.decomp, STD, &mut fx.rng);
        let msg = test_message(fx.n);
        let ct = fx.glwe_sk.encrypt(&msg, STD, &mut fx.rng);
        let fourier = ggsw.to_fourier(&fx.fft);
        let prod = fourier.external_product(&ct, &fx.fft);
        let phase = fx.glwe_sk.decrypt_phase(&prod).unwrap();
        for (p, m) in phase.coeffs().iter().zip(msg.coeffs()) {
            assert_eq!(decode_message(*p, 4), decode_message(*m, 4));
        }
    }

    #[test]
    fn external_product_by_zero_kills_message() {
        let mut fx = fixture(1, 64);
        let ggsw = GgswCiphertext::encrypt_scalar(0, &fx.glwe_sk, fx.decomp, STD, &mut fx.rng);
        let msg = test_message(fx.n);
        let ct = fx.glwe_sk.encrypt(&msg, STD, &mut fx.rng);
        let fourier = ggsw.to_fourier(&fx.fft);
        let prod = fourier.external_product(&ct, &fx.fft);
        let phase = fx.glwe_sk.decrypt_phase(&prod).unwrap();
        for p in phase.coeffs() {
            assert_eq!(decode_message(*p, 4), 0);
        }
    }

    #[test]
    fn fourier_path_matches_exact_path() {
        let mut fx = fixture(2, 32);
        let ggsw = GgswCiphertext::encrypt_scalar(1, &fx.glwe_sk, fx.decomp, STD, &mut fx.rng);
        let msg = test_message(fx.n);
        let ct = fx.glwe_sk.encrypt(&msg, STD, &mut fx.rng);
        let exact = ggsw.external_product_exact(&ct);
        let fourier = ggsw.to_fourier(&fx.fft).external_product(&ct, &fx.fft);
        // The two paths agree up to FFT rounding noise, far below the
        // decoding threshold used here.
        let pe = fx.glwe_sk.decrypt_phase(&exact).unwrap();
        let pf = fx.glwe_sk.decrypt_phase(&fourier).unwrap();
        for (a, b) in pe.coeffs().iter().zip(pf.coeffs()) {
            assert_eq!(decode_message(*a, 4), decode_message(*b, 4));
        }
    }

    #[test]
    fn seeded_ggsw_matches_classical_semantics() {
        // A seeded GGSW row encrypts the gadget's phase contribution
        // instead of folding the gadget into a mask; the external
        // product must be unable to tell the difference.
        for (k, n) in [(1usize, 64usize), (2, 32)] {
            let mut fx = fixture(k, n);
            for message in [0u64, 1] {
                let mut crs = NoiseSampler::from_seed(4242);
                let ggsw = GgswCiphertext::encrypt_scalar_seeded(
                    message,
                    &fx.glwe_sk,
                    fx.decomp,
                    STD,
                    &mut fx.rng,
                    &mut crs,
                );
                let msg = test_message(fx.n);
                let ct = fx.glwe_sk.encrypt(&msg, STD, &mut fx.rng);
                let prod = ggsw.external_product_exact(&ct);
                let phase = fx.glwe_sk.decrypt_phase(&prod).unwrap();
                for (p, m) in phase.coeffs().iter().zip(msg.coeffs()) {
                    let want = if message == 1 { decode_message(*m, 4) } else { 0 };
                    assert_eq!(decode_message(*p, 4), want, "k={k} n={n} m={message}");
                }
            }
        }
    }

    #[test]
    fn seeded_ggsw_expansion_is_bit_identical() {
        let mut fx = fixture(2, 32);
        let mut crs = NoiseSampler::from_seed(7);
        let ggsw = GgswCiphertext::encrypt_scalar_seeded(
            1,
            &fx.glwe_sk,
            fx.decomp,
            STD,
            &mut fx.rng,
            &mut crs,
        );
        // Transport payload: the bodies only.
        let bodies: Vec<TorusPolynomial> = ggsw.rows().iter().map(|r| r.body().clone()).collect();
        let mut crs2 = NoiseSampler::from_seed(7);
        let expanded = GgswCiphertext::from_seeded_parts(&bodies, fx.decomp, 2, &mut crs2);
        assert_eq!(expanded.rows(), ggsw.rows());
    }

    #[test]
    fn external_product_is_linear_in_the_glwe() {
        // GGSW(1) ⊡ (c1 + c2) ≈ GGSW(1)⊡c1 + GGSW(1)⊡c2 (up to noise).
        let mut fx = fixture(1, 64);
        let ggsw = GgswCiphertext::encrypt_scalar(1, &fx.glwe_sk, fx.decomp, STD, &mut fx.rng)
            .to_fourier(&fx.fft);
        let m1 = TorusPolynomial::constant(fx.n, encode_fraction(1, 4));
        let m2 = TorusPolynomial::constant(fx.n, encode_fraction(2, 4));
        let c1 = fx.glwe_sk.encrypt(&m1, STD, &mut fx.rng);
        let c2 = fx.glwe_sk.encrypt(&m2, STD, &mut fx.rng);
        let mut sum = c1.clone();
        sum.add_assign(&c2).unwrap();
        let p_sum = ggsw.external_product(&sum, &fx.fft);
        let phase = fx.glwe_sk.decrypt_phase(&p_sum).unwrap();
        assert_eq!(decode_message(phase[0], 4), 3);
    }

    #[test]
    fn ggsw_row_count_and_fourier_size() {
        let mut fx = fixture(1, 64);
        let ggsw = GgswCiphertext::encrypt_scalar(1, &fx.glwe_sk, fx.decomp, STD, &mut fx.rng);
        assert_eq!(ggsw.rows().len(), (fx.k + 1) * fx.decomp.level);
        let fourier = ggsw.to_fourier(&fx.fft);
        // (k+1)l rows × (k+1) cols × N/2 points × 16 bytes
        assert_eq!(
            fourier.byte_size(),
            (fx.k + 1) * fx.decomp.level * (fx.k + 1) * (fx.n / 2) * 16
        );
    }

    #[test]
    fn trivial_ggsw_acts_like_noiseless_encryption() {
        // Trivial GGSW(1) ⊡ ct must preserve the message exactly like
        // an encrypted GGSW(1), with zero key noise.
        let mut fx = fixture(1, 64);
        let trivial = GgswCiphertext::trivial(1, 1, 64, fx.decomp).to_fourier(&fx.fft);
        let msg = test_message(fx.n);
        let ct = fx.glwe_sk.encrypt(&msg, STD, &mut fx.rng);
        let prod = trivial.external_product(&ct, &fx.fft);
        let phase = fx.glwe_sk.decrypt_phase(&prod).unwrap();
        for (p, m) in phase.coeffs().iter().zip(msg.coeffs()) {
            assert_eq!(decode_message(*p, 4), decode_message(*m, 4));
        }
    }

    #[test]
    fn scratch_product_is_bit_identical_to_allocating_product() {
        // The scratch path must be *bit*-identical, not just decode to
        // the same message: parallel epochs rely on it.
        for (k, n) in [(1usize, 64usize), (2, 32)] {
            let mut fx = fixture(k, n);
            let ggsw = GgswCiphertext::encrypt_scalar(1, &fx.glwe_sk, fx.decomp, STD, &mut fx.rng)
                .to_fourier(&fx.fft);
            let mut scratch = ExternalProductScratch::new(k, n, fx.decomp);
            let mut out = GlweCiphertext::zero(k, n);
            for trial in 0..3 {
                let msg = test_message(fx.n);
                let ct = fx.glwe_sk.encrypt(&msg, STD, &mut fx.rng);
                let alloc = ggsw.external_product(&ct, &fx.fft);
                // Same scratch reused across trials: stale state must
                // not leak into the result.
                ggsw.external_product_scratch(&ct, &fx.fft, &mut out, &mut scratch);
                assert_eq!(out, alloc, "k={k} n={n} trial={trial}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "scratch glwe dimension mismatch")]
    fn scratch_product_rejects_wrong_scratch_shape() {
        let mut fx = fixture(1, 64);
        let ggsw = GgswCiphertext::encrypt_scalar(1, &fx.glwe_sk, fx.decomp, STD, &mut fx.rng)
            .to_fourier(&fx.fft);
        let ct = fx.glwe_sk.encrypt(&test_message(fx.n), STD, &mut fx.rng);
        let mut out = GlweCiphertext::zero(1, 64);
        let mut wrong = ExternalProductScratch::new(2, 64, fx.decomp);
        ggsw.external_product_scratch(&ct, &fx.fft, &mut out, &mut wrong);
    }

    #[test]
    fn profiled_product_records_all_stages() {
        let mut fx = fixture(1, 64);
        let ggsw = GgswCiphertext::encrypt_scalar(1, &fx.glwe_sk, fx.decomp, STD, &mut fx.rng)
            .to_fourier(&fx.fft);
        let ct = fx.glwe_sk.encrypt(&test_message(fx.n), STD, &mut fx.rng);
        let mut t = StageTimings::default();
        let _ = ggsw.external_product_profiled(&ct, &fx.fft, &mut t);
        for stage in
            [PbsStage::Decompose, PbsStage::Fft, PbsStage::VectorMultiply, PbsStage::IfftAccumulate]
        {
            assert!(t.total_for(stage) > std::time::Duration::ZERO, "{stage:?}");
        }
    }
}
