//! Repository-invariant linter: `cargo run -p xtask -- lint`.
//!
//! Machine-checks the invariants the codebase otherwise enforces only
//! by reviewer memory. Five checks, each with a test fixture proving it
//! fires on a seeded violation:
//!
//! 1. **hot-path-alloc** — no allocation calls (`Vec::new`, `vec!`,
//!    `.to_vec()`, `.collect()`, `Box::new`) inside the designated
//!    CMUX/blind-rotate and FFT-kernel regions, delimited in-source by
//!    `// lint:hot-path-start` / `// lint:hot-path-end` markers.
//! 2. **panic** — no `.unwrap()` / `.expect(` / `panic!` / `todo!` /
//!    `unimplemented!` / `unreachable!` in non-test `runtime`, `tfhe`
//!    and `fft` library code. Genuinely unreachable uses carry a
//!    `// lint:allow(panic) <reason>` comment on the same or the
//!    immediately preceding line.
//! 3. **serde-default** — struct fields added to the serde types in
//!    `metrics.rs` / `trace.rs` after the v1 schema baseline must carry
//!    `#[serde(default)]` so old captures keep deserializing.
//! 4. **lint-header** — the workspace lint posture lives in a single
//!    `[workspace.lints]` table in the root `Cargo.toml` (with
//!    `unsafe_code = "deny"` so the SIMD backend tree can opt back in
//!    per-module); every `crates/*` manifest opts in with
//!    `[lints] workspace = true`, and no `lib.rs` re-declares the old
//!    inline headers.
//! 5. **unsafe-hygiene** — the `unsafe` keyword appears only under
//!    `crates/fft/src/backend/` (the SIMD kernel backends, where
//!    feature-gated intrinsics make it unavoidable), and every use
//!    there is justified by a `// SAFETY:` comment on the same line or
//!    in the comment block immediately above.
//!
//! Allow-comments are per-check: `lint:allow(panic)`,
//! `lint:allow(alloc)` and `lint:allow(unsafe)`. The reason text is
//! mandatory by convention and reviewed like any other comment.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directories whose `.rs` files are subject to the panic check.
const PANIC_SCAN_ROOTS: &[&str] = &["crates/runtime/src", "crates/tfhe/src", "crates/fft/src"];

/// Panic-token spellings. `.expect(` deliberately does not match
/// `.expect_err(`, and `.unwrap()` does not match `unwrap_or_else`.
const PANIC_TOKENS: &[&str] =
    &[".unwrap()", ".expect(", "panic!", "todo!", "unimplemented!", "unreachable!"];

/// Files that must contain marked hot-path regions.
const HOT_PATH_FILES: &[&str] = &["crates/tfhe/src/bootstrap.rs", "crates/fft/src/soa.rs"];

/// Allocation-call spellings forbidden inside hot-path regions.
const ALLOC_TOKENS: &[&str] = &["Vec::new", "vec!", ".to_vec()", ".collect()", "Box::new"];

const HOT_PATH_START: &str = "lint:hot-path-start";
const HOT_PATH_END: &str = "lint:hot-path-end";

/// The v1 schema baseline for serde types in `metrics.rs`/`trace.rs`:
/// fields present when the check was introduced. Any field *not* in
/// this list must be `#[serde(default)]` so reports and traces captured
/// by older builds keep deserializing byte-compatibly.
const SERDE_BASELINE: &[(&str, &str, &[&str])] = &[
    (
        "crates/runtime/src/metrics.rs",
        "ClassLatency",
        &[
            "class",
            "completed",
            "failed",
            "mean_queue_wait_us",
            "mean_batch_wait_us",
            "mean_execute_us",
            "mean_latency_us",
        ],
    ),
    (
        "crates/runtime/src/metrics.rs",
        "PbsStageBreakdown",
        &[
            "sampled_epochs",
            "sampled_pbs",
            "modswitch_us",
            "rotate_us",
            "decompose_us",
            "forward_fft_us",
            "vma_us",
            "inverse_fft_us",
            "sample_extract_us",
            "keyswitch_us",
            "linear_ops_us",
        ],
    ),
    (
        "crates/runtime/src/metrics.rs",
        "MetricsWindow",
        &[
            "start_s",
            "duration_s",
            "completed",
            "failed",
            "pbs_completed",
            "epochs",
            "pbs_per_s",
            "mean_occupancy",
            "max_queue_depth",
        ],
    ),
    (
        "crates/runtime/src/metrics.rs",
        "RuntimeReport",
        &[
            "schema_version",
            "requests_completed",
            "requests_failed",
            "fused_linear_completed",
            "epochs",
            "epoch_capacity",
            "p50_latency_us",
            "p90_latency_us",
            "p99_latency_us",
            "max_latency_us",
            "achieved_pbs_per_s",
            "pbs_jobs_classical",
            "pbs_jobs_multi_bit",
            "mean_batch_occupancy",
            "occupancy_histogram",
            "mean_threads_per_epoch",
            "thread_occupancy",
            "max_threads_per_epoch",
            "ingress_queue_depth",
            "ingress_queue_high_water",
            "latency_attribution",
            "pbs_stage_breakdown",
            "windows",
            "elapsed_s",
        ],
    ),
    (
        "crates/runtime/src/trace.rs",
        "ChromeTraceEvent",
        &["name", "cat", "ph", "ts", "dur", "pid", "tid", "args"],
    ),
    ("crates/runtime/src/trace.rs", "ChromeTraceArgs", &["span", "seq", "epoch"]),
];

/// One lint violation.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Finding {
    file: PathBuf,
    line: usize,
    check: &'static str,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.check, self.message)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut cmd = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root needs a path argument");
                    return ExitCode::FAILURE;
                }
            },
            "lint" => cmd = Some("lint"),
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    match cmd {
        Some("lint") => {}
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint [--root PATH]");
            return ExitCode::FAILURE;
        }
    }
    let findings = run_lint(&root);
    if findings.is_empty() {
        println!("xtask lint: all invariants hold");
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!("xtask lint: {} violation(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// Runs every check against the repository rooted at `root`.
fn run_lint(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(check_hot_path_allocations(root));
    findings.extend(check_panic_tokens(root));
    findings.extend(check_serde_defaults(root));
    findings.extend(check_lint_headers(root));
    findings.extend(check_unsafe_hygiene(root));
    findings
}

// ---------------------------------------------------------------------------
// Source scanning machinery
// ---------------------------------------------------------------------------

/// One physical source line, raw and with comments/strings blanked.
struct ScanLine {
    /// 1-based line number.
    number: usize,
    /// The raw line, for marker and allow-comment detection.
    raw: String,
    /// The line with comments and string/char literal contents replaced
    /// by spaces, for token matching.
    code: String,
    /// Whether the line sits inside a `#[cfg(test)]` item.
    in_test: bool,
}

/// Prepares a file for token scanning: blanks comments and string
/// literal contents (so doc examples and message strings can't trip
/// token matches) and marks `#[cfg(test)]` regions by brace counting.
fn scan_file(source: &str) -> Vec<ScanLine> {
    let mut lines = Vec::new();
    let mut in_block_comment = false;
    for (i, raw) in source.lines().enumerate() {
        let code = blank_non_code(raw, &mut in_block_comment);
        lines.push(ScanLine { number: i + 1, raw: raw.to_string(), code, in_test: false });
    }
    // Mark #[cfg(test)] items: from the attribute, through the next
    // opening brace, to its matching close.
    let mut idx = 0;
    while idx < lines.len() {
        if lines[idx].code.contains("cfg(test)") || lines[idx].code.contains("cfg(all(test") {
            let mut depth = 0usize;
            let mut opened = false;
            let mut j = idx;
            while j < lines.len() {
                lines[j].in_test = true;
                for c in lines[j].code.clone().chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth = depth.saturating_sub(1),
                        _ => {}
                    }
                }
                if opened && depth == 0 {
                    break;
                }
                j += 1;
            }
            idx = j + 1;
        } else {
            idx += 1;
        }
    }
    lines
}

/// Replaces comments and string/char literal contents with spaces,
/// keeping byte offsets stable. Handles `//` line comments, `/* */`
/// block comments (possibly spanning lines via `in_block_comment`),
/// double-quoted strings with backslash escapes, and character
/// literals (while leaving lifetimes alone).
fn blank_non_code(line: &str, in_block_comment: &mut bool) -> String {
    let bytes: Vec<char> = line.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if *in_block_comment {
            if bytes[i] == '*' && i + 1 < bytes.len() && bytes[i + 1] == '/' {
                *in_block_comment = false;
                out.push(' ');
                out.push(' ');
                i += 2;
            } else {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        match bytes[i] {
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '/' => {
                // Line comment: blank the rest of the line.
                while i < bytes.len() {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '*' => {
                *in_block_comment = true;
                out.push(' ');
                out.push(' ');
                i += 2;
            }
            '"' => {
                out.push('"');
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == '\\' && i + 1 < bytes.len() {
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                    } else if bytes[i] == '"' {
                        out.push('"');
                        i += 1;
                        break;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
            }
            '\'' => {
                // Char literal or lifetime. A literal closes within a
                // couple of characters; a lifetime never closes.
                if i + 2 < bytes.len() && bytes[i + 1] == '\\' {
                    let close = (i + 2..bytes.len().min(i + 6)).find(|&j| bytes[j] == '\'');
                    if let Some(c) = close {
                        out.push('\'');
                        out.extend(std::iter::repeat_n(' ', c - i - 1));
                        out.push('\'');
                        i = c + 1;
                    } else {
                        out.push(bytes[i]);
                        i += 1;
                    }
                } else if i + 2 < bytes.len() && bytes[i + 2] == '\'' {
                    out.push('\'');
                    out.push(' ');
                    out.push('\'');
                    i += 3;
                } else {
                    out.push(bytes[i]);
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out.into_iter().collect()
}

/// Whether line `idx` carries (or inherits from the previous line) an
/// allow-comment for `check` (e.g. `lint:allow(panic)`).
fn allowed(lines: &[ScanLine], idx: usize, check: &str) -> bool {
    let tag = format!("lint:allow({check})");
    if lines[idx].raw.contains(&tag) {
        return true;
    }
    idx > 0 && lines[idx - 1].raw.contains(&tag)
}

/// Collects every `.rs` file under `dir`, recursively, sorted for
/// deterministic output.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

// ---------------------------------------------------------------------------
// Check 1: hot-path allocations
// ---------------------------------------------------------------------------

fn check_hot_path_allocations(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rel in HOT_PATH_FILES {
        let path = root.join(rel);
        let Ok(source) = fs::read_to_string(&path) else {
            findings.push(Finding {
                file: path,
                line: 0,
                check: "hot-path-alloc",
                message: "designated hot-path file is missing".into(),
            });
            continue;
        };
        let lines = scan_file(&source);
        let mut in_region = false;
        let mut region_count = 0usize;
        for (idx, line) in lines.iter().enumerate() {
            if line.raw.contains(HOT_PATH_START) {
                in_region = true;
                region_count += 1;
                continue;
            }
            if line.raw.contains(HOT_PATH_END) {
                in_region = false;
                continue;
            }
            if !in_region || line.in_test {
                continue;
            }
            for token in ALLOC_TOKENS {
                if line.code.contains(token) && !allowed(&lines, idx, "alloc") {
                    findings.push(Finding {
                        file: path.clone(),
                        line: line.number,
                        check: "hot-path-alloc",
                        message: format!("allocation call `{token}` inside a hot-path region"),
                    });
                }
            }
        }
        if region_count == 0 {
            findings.push(Finding {
                file: path.clone(),
                line: 0,
                check: "hot-path-alloc",
                message: format!(
                    "no `{HOT_PATH_START}` region markers — the designated hot path is unguarded"
                ),
            });
        }
        if in_region {
            findings.push(Finding {
                file: path,
                line: 0,
                check: "hot-path-alloc",
                message: format!("unbalanced region markers: missing `{HOT_PATH_END}`"),
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Check 2: panic tokens on the service path
// ---------------------------------------------------------------------------

fn check_panic_tokens(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for scan_root in PANIC_SCAN_ROOTS {
        for path in rust_files(&root.join(scan_root)) {
            let Ok(source) = fs::read_to_string(&path) else { continue };
            let lines = scan_file(&source);
            for (idx, line) in lines.iter().enumerate() {
                if line.in_test {
                    continue;
                }
                for token in PANIC_TOKENS {
                    if line.code.contains(token) && !allowed(&lines, idx, "panic") {
                        findings.push(Finding {
                            file: path.clone(),
                            line: line.number,
                            check: "panic",
                            message: format!("`{token}` in non-test service code"),
                        });
                    }
                }
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Check 3: serde schema evolution
// ---------------------------------------------------------------------------

fn check_serde_defaults(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (rel, struct_name, baseline) in SERDE_BASELINE {
        let path = root.join(rel);
        let Ok(source) = fs::read_to_string(&path) else {
            findings.push(Finding {
                file: path,
                line: 0,
                check: "serde-default",
                message: format!("file with baselined struct `{struct_name}` is missing"),
            });
            continue;
        };
        findings.extend(check_struct_fields(&path, &source, struct_name, baseline));
    }
    findings
}

/// Finds `struct_name` in `source` and reports fields outside
/// `baseline` that lack `#[serde(default)]`.
fn check_struct_fields(
    path: &Path,
    source: &str,
    struct_name: &str,
    baseline: &[&str],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let lines: Vec<&str> = source.lines().collect();
    let header = format!("struct {struct_name} ");
    let header_brace = format!("struct {struct_name} {{");
    let Some(start) = lines.iter().position(|l| {
        l.contains(header_brace.as_str()) || l.trim_end().ends_with(header.trim_end())
    }) else {
        findings.push(Finding {
            file: path.to_path_buf(),
            line: 0,
            check: "serde-default",
            message: format!("baselined struct `{struct_name}` not found (baseline stale?)"),
        });
        return findings;
    };
    let mut has_default = false;
    for (offset, raw) in lines[start + 1..].iter().enumerate() {
        let line_no = start + 2 + offset;
        let trimmed = raw.trim();
        if trimmed.starts_with('}') {
            break;
        }
        if trimmed.starts_with("#[") {
            if trimmed.contains("serde(default") {
                has_default = true;
            }
            continue;
        }
        if trimmed.starts_with("//") || trimmed.is_empty() {
            continue;
        }
        let Some(field) = field_name(trimmed) else {
            has_default = false;
            continue;
        };
        if !baseline.contains(&field) && !has_default {
            findings.push(Finding {
                file: path.to_path_buf(),
                line: line_no,
                check: "serde-default",
                message: format!(
                    "field `{struct_name}.{field}` is newer than the v1 schema baseline but \
                     lacks #[serde(default)]"
                ),
            });
        }
        has_default = false;
    }
    findings
}

/// Extracts the field name from a `pub name: Type,` line.
fn field_name(trimmed: &str) -> Option<&str> {
    let rest = trimmed.strip_prefix("pub ")?;
    let colon = rest.find(':')?;
    let name = rest[..colon].trim();
    (!name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'))
        .then_some(name)
}

// ---------------------------------------------------------------------------
// Check 4: workspace lint-header single source of truth
// ---------------------------------------------------------------------------

fn check_lint_headers(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let root_manifest = root.join("Cargo.toml");
    match fs::read_to_string(&root_manifest) {
        Ok(s) => {
            if !s.contains("[workspace.lints.rust]")
                || !s.contains("unsafe_code = \"deny\"")
                || !s.contains("missing_docs = \"warn\"")
            {
                findings.push(Finding {
                    file: root_manifest.clone(),
                    line: 0,
                    check: "lint-header",
                    message: "root Cargo.toml must declare [workspace.lints.rust] with \
                              unsafe_code = \"deny\" (deny, not forbid, so the kernel-backend \
                              modules can `#![allow(unsafe_code)]`) and missing_docs = \"warn\""
                        .into(),
                });
            }
        }
        Err(_) => findings.push(Finding {
            file: root_manifest.clone(),
            line: 0,
            check: "lint-header",
            message: "root Cargo.toml is missing".into(),
        }),
    }
    let crates_dir = root.join("crates");
    let Ok(entries) = fs::read_dir(&crates_dir) else {
        findings.push(Finding {
            file: crates_dir,
            line: 0,
            check: "lint-header",
            message: "crates/ directory is missing".into(),
        });
        return findings;
    };
    let mut members: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    members.sort();
    for member in members {
        let manifest = member.join("Cargo.toml");
        if let Ok(s) = fs::read_to_string(&manifest) {
            let opted_in = s
                .split("[lints]")
                .nth(1)
                .is_some_and(|tail| tail.trim_start().starts_with("workspace = true"));
            if !opted_in {
                findings.push(Finding {
                    file: manifest,
                    line: 0,
                    check: "lint-header",
                    message: "member crate does not opt into [lints] workspace = true".into(),
                });
            }
        }
        let lib = member.join("src/lib.rs");
        if let Ok(s) = fs::read_to_string(&lib) {
            for (i, raw) in s.lines().enumerate() {
                let t = raw.trim();
                if t == "#![forbid(unsafe_code)]"
                    || t == "#![deny(unsafe_code)]"
                    || t == "#![warn(missing_docs)]"
                {
                    findings.push(Finding {
                        file: lib.clone(),
                        line: i + 1,
                        check: "lint-header",
                        message: format!(
                            "inline `{t}` duplicates the [workspace.lints] table — remove it"
                        ),
                    });
                }
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Check 5: unsafe-code hygiene
// ---------------------------------------------------------------------------

/// The one directory allowed to contain `unsafe` code: the SIMD kernel
/// backends, where feature-gated intrinsics make it unavoidable.
const UNSAFE_ALLOWED_DIR: &str = "crates/fft/src/backend";

/// Whether `code` contains the `unsafe` keyword. Word-boundary match,
/// so identifiers like `unsafe_code` (in an `allow` attribute) do not
/// trip it; `code` has comments and strings already blanked.
fn has_unsafe_keyword(code: &str) -> bool {
    let bytes = code.as_bytes();
    let boundary = |b: u8| !(b.is_ascii_alphanumeric() || b == b'_');
    let mut from = 0;
    while let Some(pos) = code[from..].find("unsafe") {
        let i = from + pos;
        let end = i + "unsafe".len();
        if (i == 0 || boundary(bytes[i - 1])) && (end == bytes.len() || boundary(bytes[end])) {
            return true;
        }
        from = i + 1;
    }
    false
}

/// Whether the `unsafe` at line `idx` is justified by a `// SAFETY:`
/// comment — trailing on the same line, or anywhere in the contiguous
/// run of comment/attribute lines immediately above it (a SAFETY
/// comment may span lines, and a `#[cfg]` may sit between it and the
/// match arm it covers).
fn has_safety_comment(lines: &[ScanLine], idx: usize) -> bool {
    if lines[idx].raw.contains("SAFETY:") {
        return true;
    }
    for line in lines[..idx].iter().rev() {
        let t = line.raw.trim();
        if t.starts_with("//") {
            if t.contains("SAFETY:") {
                return true;
            }
        } else if !t.starts_with("#[") {
            return false;
        }
    }
    false
}

fn check_unsafe_hygiene(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let allowed_dir = root.join(UNSAFE_ALLOWED_DIR);
    // The linter itself is exempt: its fixtures must be able to spell
    // violations in string literals (which the line-oriented blanker
    // cannot track across `\n\` continuations). The workspace-level
    // `unsafe_code = "deny"` lint still covers xtask at compile time.
    let linter_dir = root.join("crates/xtask");
    for path in rust_files(&root.join("crates")) {
        if path.starts_with(&linter_dir) {
            continue;
        }
        let Ok(source) = fs::read_to_string(&path) else { continue };
        let lines = scan_file(&source);
        let in_backend = path.starts_with(&allowed_dir);
        for (idx, line) in lines.iter().enumerate() {
            if !has_unsafe_keyword(&line.code) || allowed(&lines, idx, "unsafe") {
                continue;
            }
            if !in_backend {
                findings.push(Finding {
                    file: path.clone(),
                    line: line.number,
                    check: "unsafe-hygiene",
                    message: format!(
                        "`unsafe` outside the kernel-backend tree ({UNSAFE_ALLOWED_DIR}/)"
                    ),
                });
            } else if !has_safety_comment(&lines, idx) {
                findings.push(Finding {
                    file: path.clone(),
                    line: line.number,
                    check: "unsafe-hygiene",
                    message: "`unsafe` in a backend module without a preceding `// SAFETY:` \
                              comment"
                        .into(),
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Fixture tests: each check must fire on a seeded violation and stay
// quiet when the allow-syntax or the invariant itself is honoured.
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    /// A throw-away tree under the target dir, deleted on drop.
    struct Fixture {
        root: PathBuf,
    }

    impl Fixture {
        fn new(name: &str) -> Self {
            let root =
                std::env::temp_dir().join(format!("xtask-fixture-{}-{name}", std::process::id()));
            let _ = fs::remove_dir_all(&root);
            fs::create_dir_all(&root).expect("create fixture root");
            Self { root }
        }

        fn write(&self, rel: &str, contents: &str) {
            let path = self.root.join(rel);
            fs::create_dir_all(path.parent().expect("fixture paths have parents"))
                .expect("create fixture dirs");
            fs::write(path, contents).expect("write fixture file");
        }

        /// Seeds the minimal tree every check accepts, so a test can
        /// perturb exactly one invariant.
        fn write_clean_tree(&self) {
            self.write(
                "Cargo.toml",
                "[workspace]\n[workspace.lints.rust]\nunsafe_code = \"deny\"\n\
                 missing_docs = \"warn\"\n",
            );
            for krate in ["runtime", "tfhe", "fft"] {
                self.write(
                    &format!("crates/{krate}/Cargo.toml"),
                    "[package]\nname = \"x\"\n\n[lints]\nworkspace = true\n",
                );
                self.write(&format!("crates/{krate}/src/lib.rs"), "//! Docs.\n");
            }
            self.write(
                "crates/tfhe/src/bootstrap.rs",
                "// lint:hot-path-start\nfn rotate() {}\n// lint:hot-path-end\n",
            );
            self.write(
                "crates/fft/src/soa.rs",
                "// lint:hot-path-start\nfn kernel() {}\n// lint:hot-path-end\n",
            );
            self.write(
                "crates/runtime/src/metrics.rs",
                metrics_fixture(&[], &[], &[], &[]).as_str(),
            );
            self.write(
                "crates/runtime/src/trace.rs",
                "pub struct ChromeTraceEvent {\n    pub name: String,\n    pub cat: String,\n\
                 \x20   pub ph: String,\n    pub ts: u64,\n    pub dur: u64,\n    pub pid: u64,\n\
                 \x20   pub tid: u64,\n    pub args: ChromeTraceArgs,\n}\n\
                 pub struct ChromeTraceArgs {\n    pub span: u64,\n    pub seq: u64,\n\
                 \x20   pub epoch: Option<u64>,\n}\n",
            );
        }
    }

    impl Drop for Fixture {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.root);
        }
    }

    /// Renders a metrics.rs stand-in whose four baselined structs carry
    /// the full baseline field set plus the given extra field lines.
    fn metrics_fixture(
        class_extra: &[&str],
        stage_extra: &[&str],
        window_extra: &[&str],
        report_extra: &[&str],
    ) -> String {
        let mut out = String::new();
        let extras = [class_extra, stage_extra, window_extra, report_extra];
        for ((_, name, fields), extra) in
            SERDE_BASELINE.iter().filter(|(rel, _, _)| rel.ends_with("metrics.rs")).zip(extras)
        {
            out.push_str(&format!("pub struct {name} {{\n"));
            for f in fields.iter() {
                out.push_str(&format!("    pub {f}: u64,\n"));
            }
            for line in extra.iter() {
                out.push_str(line);
                out.push('\n');
            }
            out.push_str("}\n");
        }
        out
    }

    fn findings_for(fix: &Fixture, check: &str) -> Vec<Finding> {
        run_lint(&fix.root).into_iter().filter(|f| f.check == check).collect()
    }

    #[test]
    fn clean_tree_passes_every_check() {
        let fix = Fixture::new("clean");
        fix.write_clean_tree();
        let findings = run_lint(&fix.root);
        assert!(findings.is_empty(), "unexpected findings: {findings:?}");
    }

    #[test]
    fn hot_path_allocation_is_flagged() {
        let fix = Fixture::new("hot-alloc");
        fix.write_clean_tree();
        fix.write(
            "crates/fft/src/soa.rs",
            "// lint:hot-path-start\nfn kernel() { let v = Vec::new(); let _ = v; }\n\
             // lint:hot-path-end\n",
        );
        let findings = findings_for(&fix, "hot-path-alloc");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("Vec::new"));
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn hot_path_alloc_allow_comment_suppresses() {
        let fix = Fixture::new("hot-alloc-allow");
        fix.write_clean_tree();
        fix.write(
            "crates/fft/src/soa.rs",
            "// lint:hot-path-start\n// lint:allow(alloc) cold setup branch\n\
             fn kernel() { let v = Vec::new(); let _ = v; }\n// lint:hot-path-end\n",
        );
        assert!(findings_for(&fix, "hot-path-alloc").is_empty());
    }

    #[test]
    fn missing_hot_path_markers_are_flagged() {
        let fix = Fixture::new("hot-markers");
        fix.write_clean_tree();
        fix.write("crates/fft/src/soa.rs", "fn kernel() {}\n");
        let findings = findings_for(&fix, "hot-path-alloc");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("unguarded"));
    }

    #[test]
    fn hot_path_allocations_in_tests_are_fine() {
        let fix = Fixture::new("hot-test");
        fix.write_clean_tree();
        fix.write(
            "crates/fft/src/soa.rs",
            "// lint:hot-path-start\nfn kernel() {}\n#[cfg(test)]\nmod tests {\n\
             \x20   fn t() { let v = Vec::new(); let _ = v; }\n}\n// lint:hot-path-end\n",
        );
        assert!(findings_for(&fix, "hot-path-alloc").is_empty());
    }

    #[test]
    fn panic_tokens_are_flagged_outside_tests() {
        let fix = Fixture::new("panic");
        fix.write_clean_tree();
        fix.write(
            "crates/runtime/src/queue.rs",
            "fn pop() { None::<u8>.unwrap(); }\n#[cfg(test)]\nmod tests {\n\
             \x20   fn t() { None::<u8>.unwrap(); }\n}\n",
        );
        let findings = findings_for(&fix, "panic");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn panic_allow_comment_suppresses_same_and_previous_line() {
        let fix = Fixture::new("panic-allow");
        fix.write_clean_tree();
        fix.write(
            "crates/runtime/src/queue.rs",
            "fn a() { None::<u8>.unwrap() } // lint:allow(panic) invariant\n\
             // lint:allow(panic) invariant\nfn b() { None::<u8>.unwrap() }\n",
        );
        assert!(findings_for(&fix, "panic").is_empty());
    }

    #[test]
    fn panic_tokens_in_comments_and_strings_are_ignored() {
        let fix = Fixture::new("panic-comments");
        fix.write_clean_tree();
        fix.write(
            "crates/runtime/src/doc.rs",
            "/// Example: `x.unwrap()` then panic!(\"no\").\n\
             fn msg() -> &'static str { \".unwrap() panic! todo!\" }\n\
             /* block comment .expect( spanning\n   lines with panic! tokens */\n",
        );
        assert!(findings_for(&fix, "panic").is_empty());
    }

    #[test]
    fn expect_err_and_unwrap_or_else_are_not_panic_tokens() {
        let fix = Fixture::new("panic-lookalikes");
        fix.write_clean_tree();
        fix.write(
            "crates/runtime/src/ok.rs",
            "fn f(r: Result<u8, u8>) -> u8 { r.unwrap_or_else(|e| e) }\n\
             fn g(r: Result<u8, u8>) -> u8 { r.expect_err(\"want err\") }\n",
        );
        assert!(findings_for(&fix, "panic").is_empty());
    }

    #[test]
    fn new_serde_field_without_default_is_flagged() {
        let fix = Fixture::new("serde");
        fix.write_clean_tree();
        fix.write(
            "crates/runtime/src/metrics.rs",
            metrics_fixture(&[], &[], &[], &["    pub brand_new_counter: u64,"]).as_str(),
        );
        let findings = findings_for(&fix, "serde-default");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("RuntimeReport.brand_new_counter"));
    }

    #[test]
    fn new_serde_field_with_default_passes() {
        let fix = Fixture::new("serde-ok");
        fix.write_clean_tree();
        fix.write(
            "crates/runtime/src/metrics.rs",
            metrics_fixture(&[], &[], &[], &["    #[serde(default)]", "    pub new_one: u64,"])
                .as_str(),
        );
        assert!(findings_for(&fix, "serde-default").is_empty());
    }

    #[test]
    fn tenant_key_cache_fields_are_post_baseline_and_need_default() {
        // The multi-tenant key fabric appended six key-cache fields to
        // `RuntimeReport`. They are deliberately *not* in the v1
        // baseline, so the lint holds them to the `#[serde(default)]`
        // rule that keeps pre-fabric reports deserialising.
        let fields = [
            "tenants_registered",
            "key_cache_hits",
            "key_cache_misses",
            "key_cache_evictions",
            "key_cache_resident_bytes",
            "key_cache_budget_bytes",
        ];
        for (_, name, baseline) in SERDE_BASELINE {
            if *name == "RuntimeReport" {
                for f in fields {
                    assert!(!baseline.contains(&f), "{f} must stay out of the v1 baseline");
                }
            }
        }

        let bare: Vec<String> = fields.iter().map(|f| format!("    pub {f}: u64,")).collect();
        let bare_refs: Vec<&str> = bare.iter().map(String::as_str).collect();
        let fix = Fixture::new("serde-tenant-bare");
        fix.write_clean_tree();
        fix.write(
            "crates/runtime/src/metrics.rs",
            metrics_fixture(&[], &[], &[], &bare_refs).as_str(),
        );
        let findings = findings_for(&fix, "serde-default");
        assert_eq!(findings.len(), fields.len(), "{findings:?}");

        let guarded: Vec<String> = fields
            .iter()
            .flat_map(|f| ["    #[serde(default)]".to_string(), format!("    pub {f}: u64,")])
            .collect();
        let guarded_refs: Vec<&str> = guarded.iter().map(String::as_str).collect();
        let fix = Fixture::new("serde-tenant-guarded");
        fix.write_clean_tree();
        fix.write(
            "crates/runtime/src/metrics.rs",
            metrics_fixture(&[], &[], &[], &guarded_refs).as_str(),
        );
        assert!(findings_for(&fix, "serde-default").is_empty());
    }

    #[test]
    fn missing_workspace_lints_table_is_flagged() {
        let fix = Fixture::new("header-root");
        fix.write_clean_tree();
        fix.write("Cargo.toml", "[workspace]\n");
        let findings = findings_for(&fix, "lint-header");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("[workspace.lints.rust]"));
    }

    #[test]
    fn member_without_lints_opt_in_is_flagged() {
        let fix = Fixture::new("header-member");
        fix.write_clean_tree();
        fix.write("crates/runtime/Cargo.toml", "[package]\nname = \"x\"\n");
        let findings = findings_for(&fix, "lint-header");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("opt into"));
    }

    #[test]
    fn inline_header_duplicating_workspace_table_is_flagged() {
        let fix = Fixture::new("header-inline");
        fix.write_clean_tree();
        fix.write(
            "crates/tfhe/src/lib.rs",
            "//! Docs.\n#![forbid(unsafe_code)]\n#![deny(unsafe_code)]\n",
        );
        let findings = findings_for(&fix, "lint-header");
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.message.contains("duplicates")));
    }

    #[test]
    fn unsafe_outside_the_backend_tree_is_flagged() {
        let fix = Fixture::new("unsafe-outside");
        fix.write_clean_tree();
        fix.write(
            "crates/tfhe/src/fast.rs",
            "// SAFETY: a comment does not make it acceptable here.\n\
             fn read(p: *const u8) -> u8 { unsafe { *p } }\n",
        );
        let findings = findings_for(&fix, "unsafe-hygiene");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 2);
        assert!(findings[0].message.contains("outside the kernel-backend tree"));
    }

    #[test]
    fn unsafe_in_backend_without_safety_comment_is_flagged() {
        let fix = Fixture::new("unsafe-no-safety");
        fix.write_clean_tree();
        fix.write(
            "crates/fft/src/backend/avx2.rs",
            "// loads 4 lanes from offset j (not a safety argument)\n\
             fn load(s: &[f64]) -> f64 { unsafe { *s.as_ptr() } }\n",
        );
        let findings = findings_for(&fix, "unsafe-hygiene");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("SAFETY"));
    }

    #[test]
    fn safety_commented_unsafe_in_backend_passes() {
        let fix = Fixture::new("unsafe-ok");
        fix.write_clean_tree();
        // Three accepted shapes: comment directly above, comment block
        // with a continuation line and an interleaved attribute, and a
        // trailing same-line comment.
        fix.write(
            "crates/fft/src/backend/mod.rs",
            "#![allow(unsafe_code)]\n\
             // SAFETY: the slice is non-empty by construction.\n\
             fn a(s: &[f64]) -> f64 { unsafe { *s.as_ptr() } }\n\
             // SAFETY: caller proved the cpu supports avx2,\n\
             // so the feature-gated call is sound.\n\
             #[inline]\n\
             fn b(s: &[f64]) -> f64 { unsafe { *s.as_ptr() } }\n\
             fn c(s: &[f64]) -> f64 { unsafe { *s.as_ptr() } } // SAFETY: len checked\n",
        );
        assert!(findings_for(&fix, "unsafe-hygiene").is_empty());
    }

    #[test]
    fn unsafe_in_strings_comments_and_identifiers_is_ignored() {
        let fix = Fixture::new("unsafe-lookalikes");
        fix.write_clean_tree();
        fix.write(
            "crates/runtime/src/doc.rs",
            "/// Mentions unsafe in a doc comment.\n\
             fn msg() -> &'static str { \"unsafe\" }\n\
             fn unsafe_sounding_name(x: u8) -> u8 { x }\n",
        );
        assert!(findings_for(&fix, "unsafe-hygiene").is_empty());
    }
}
