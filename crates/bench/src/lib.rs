//! Shared helpers for the benchmark harnesses: table formatting and
//! paper-vs-measured comparison rows.
//!
//! Every table and figure of the Strix paper has a matching bench
//! target in this crate (`cargo bench -p strix-bench --bench <name>`);
//! the helpers here keep their output format consistent so
//! `EXPERIMENTS.md` can be assembled from the printed blocks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Formats a markdown table from a header and rows.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", header.join(" | ")));
    out.push_str(&format!("|{}\n", "---|".repeat(header.len())));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// Formats an optional value with a unit, printing `–` for `None`
/// (the paper's blank-cell convention).
pub fn opt_cell(v: Option<f64>, precision: usize) -> String {
    match v {
        Some(x) => format!("{x:.precision$}"),
        None => "–".to_string(),
    }
}

/// Ratio of measured to reference, rendered as `×` with one decimal.
pub fn ratio_cell(measured: f64, reference: f64) -> String {
    if reference == 0.0 {
        return "–".into();
    }
    format!("{:.2}x", measured / reference)
}

/// A section banner for bench output.
pub fn banner(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("|---|---|"));
        assert!(t.contains("| 1 | 2 |"));
    }

    #[test]
    fn optional_cells() {
        assert_eq!(opt_cell(Some(1.234), 2), "1.23");
        assert_eq!(opt_cell(None, 2), "–");
    }

    #[test]
    fn ratios() {
        assert_eq!(ratio_cell(74696.0, 10000.0), "7.47x");
        assert_eq!(ratio_cell(1.0, 0.0), "–");
    }

    #[test]
    fn banner_contains_title() {
        assert!(banner("Table V").contains("Table V"));
    }
}
