//! Shared helpers for the benchmark harnesses: table formatting and
//! paper-vs-measured comparison rows.
//!
//! Every table and figure of the Strix paper has a matching bench
//! target in this crate (`cargo bench -p strix-bench --bench <name>`);
//! the helpers here keep their output format consistent so
//! `EXPERIMENTS.md` can be assembled from the printed blocks.

use serde::{Deserialize, Serialize, Value};
use strix_core::PbsReport;
use strix_runtime::RuntimeReport;

/// Schema tag written into (and expected from) `BENCH_service.json`.
pub const SERVICE_SCHEMA: &str = "strix-bench-service-v1";

/// The committed closed-loop SLO snapshot (`BENCH_service.json`):
/// p50/p99 latency and achieved throughput at a sweep of offered loads
/// through the full streaming runtime, bracketing the saturation knee.
///
/// Written by `cargo run --release -p strix-bench --bin bench_service`,
/// parsed back by the same binary for the warn-only `--baseline`
/// comparison and by the schema round-trip tests, so the file format
/// is pinned by these derives rather than by hand-maintained format
/// strings.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceBenchReport {
    /// Always [`SERVICE_SCHEMA`]; bumped when the shape changes.
    pub schema: String,
    /// Seconds since the Unix epoch at measurement time.
    pub unix_time: u64,
    /// Short git commit hash the numbers were measured at.
    pub git_commit: String,
    /// Parameter set and runtime shape the sweep ran with.
    pub config: ServiceBenchConfig,
    /// Fixed-backlog capacity of the runtime (PBS/s with every epoch
    /// full), measured before the sweep and used to place the load
    /// points around the knee.
    pub capacity_pbs_per_s: f64,
    /// Throughput cost of tracing + stage sampling at their default
    /// settings, in percent of untraced capacity (negative values are
    /// measurement noise).
    pub trace_overhead_percent: f64,
    /// The saturation knee: the largest achieved PBS/s over the sweep.
    pub knee_pbs_per_s: f64,
    /// One entry per offered-load point, in sweep order.
    pub points: Vec<ServiceLoadPoint>,
}

/// The runtime/parameter shape a [`ServiceBenchReport`] was measured
/// with; baselines are only comparable when these match.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceBenchConfig {
    /// Parameter-set name (`set_ii`, `testing_fast`, …).
    pub params: String,
    /// LWE dimension `n`.
    pub lwe_dimension: usize,
    /// Polynomial size `N`.
    pub polynomial_size: usize,
    /// TvLP factor of the epoch geometry.
    pub tvlp: usize,
    /// Core batch factor of the epoch geometry.
    pub core_batch: usize,
    /// Worker threads executing epochs.
    pub workers: usize,
    /// Intra-epoch PBS threads per worker.
    pub threads_per_worker: usize,
    /// Concurrent open-loop client streams.
    pub clients: usize,
    /// Batcher deadline, in milliseconds.
    pub max_delay_ms: f64,
    /// Stage-profiling period (every Nth epoch; 0 = off).
    pub profile_every: u64,
    /// Resolved SIMD kernel backend the runtime's transforms ran on
    /// (`"portable"` / `"avx2"` / `"avx512"`; empty in snapshots from
    /// pre-backend builds). Part of the comparability shape: numbers
    /// from different backends are different machines, not different
    /// code.
    #[serde(default)]
    pub kernel_backend: String,
}

/// One offered-load point of the SLO sweep.
///
/// Latencies are measured from each request's *scheduled* arrival
/// time, not from when `submit` returned — past the knee the schedule
/// slips and queue-blocked submits dominate, and charging that wait to
/// the request is exactly what makes the p99 curve bend instead of
/// flattening (the coordinated-omission trap).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceLoadPoint {
    /// Offered load, in PBS/s across all clients.
    pub offered_pbs_per_s: f64,
    /// Length of the arrival schedule, in seconds.
    pub duration_s: f64,
    /// Requests submitted.
    pub requests: usize,
    /// Requests completed successfully.
    pub completed: usize,
    /// Requests that returned an error.
    pub failed: usize,
    /// Completed PBS per second of runtime wall clock.
    pub achieved_pbs_per_s: f64,
    /// Median latency from scheduled arrival, milliseconds.
    pub p50_ms: f64,
    /// 90th-percentile latency, milliseconds.
    pub p90_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Worst observed latency, milliseconds.
    pub max_ms: f64,
    /// Mean epoch occupancy (fraction of slots filled at flush).
    pub mean_occupancy: f64,
    /// Deepest the ingress queue got during the point.
    pub queue_high_water: usize,
    /// Mean schedule slip, milliseconds: how far behind its Poisson
    /// arrival time the average submit ran because backpressure
    /// blocked the client — the coordinated-omission debt the latency
    /// percentiles already include.
    pub mean_slip_ms: f64,
    /// Whether this point ran past the knee: achieved throughput fell
    /// measurably short of offered *and* the arrival schedule slipped
    /// (so the shortfall is the runtime's pace, not idle lead-in).
    pub saturated: bool,
}

/// Schema tag written into (and expected from) `BENCH_tenants.json`.
pub const TENANTS_SCHEMA: &str = "strix-bench-tenants-v1";

/// The committed multi-tenant key-fabric snapshot
/// (`BENCH_tenants.json`): aggregate throughput versus the number of
/// *hot* tenants sharing a fixed key-cache residency budget, through
/// the registry-backed runtime.
///
/// Written by `cargo run --release -p strix-bench --bin bench_tenants`,
/// parsed back for the warn-only `--baseline` comparison and by the
/// schema round-trip tests. The sweep's story: with the hot set inside
/// the budget the cache converges to all-hits and throughput holds
/// near single-tenant capacity; past the budget every epoch thrashes a
/// key expansion and the cost of key churn becomes visible.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TenantsBenchReport {
    /// Always [`TENANTS_SCHEMA`]; bumped when the shape changes.
    pub schema: String,
    /// Seconds since the Unix epoch at measurement time.
    pub unix_time: u64,
    /// Short git commit hash the numbers were measured at.
    pub git_commit: String,
    /// Parameter set, runtime shape and cache budget of the sweep.
    pub config: TenantsBenchConfig,
    /// One entry per hot-tenant count, in ascending order.
    pub points: Vec<TenantsLoadPoint>,
}

/// The shape a [`TenantsBenchReport`] was measured with; baselines are
/// only comparable when these match.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TenantsBenchConfig {
    /// Parameter-set name (`set_ii`, `testing_fast`, …).
    pub params: String,
    /// LWE dimension `n`.
    pub lwe_dimension: usize,
    /// Polynomial size `N`.
    pub polynomial_size: usize,
    /// TvLP factor of the epoch geometry.
    pub tvlp: usize,
    /// Core batch factor of the epoch geometry.
    pub core_batch: usize,
    /// Worker threads executing epochs.
    pub workers: usize,
    /// Intra-epoch PBS threads per worker.
    pub threads_per_worker: usize,
    /// Batcher deadline, in milliseconds.
    pub max_delay_ms: f64,
    /// Tenants registered in the key registry (all seeded).
    pub tenants_registered: usize,
    /// Residency budget, in whole expanded keys.
    pub cache_budget_keys: usize,
    /// Bytes one tenant's seeded transport form ships at onboarding.
    pub seeded_transport_bytes: usize,
    /// Bytes of one tenant's expanded resident key (the eviction
    /// accounting unit; the transport form must stay ≤ 0.6× of this).
    pub server_key_bytes: usize,
    /// Resolved SIMD kernel backend the transforms ran on.
    #[serde(default)]
    pub kernel_backend: String,
}

/// One hot-tenant-count point of the multi-tenant sweep.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TenantsLoadPoint {
    /// Tenants actively submitting during the timed window.
    pub hot_tenants: usize,
    /// Requests submitted in the timed window (across all tenants).
    pub requests: usize,
    /// Requests completed successfully.
    pub completed: usize,
    /// Requests that returned an error.
    pub failed: usize,
    /// Timed-window wall clock, in seconds.
    pub duration_s: f64,
    /// Completed PBS per second over the timed window, summed across
    /// every hot tenant.
    pub aggregate_pbs_per_s: f64,
    /// Mean epoch occupancy (fraction of slots filled at flush).
    pub mean_occupancy: f64,
    /// Key-cache hits during the timed window (warmup excluded).
    pub key_cache_hits: u64,
    /// Key-cache misses — each one is a full seeded-key expansion.
    pub key_cache_misses: u64,
    /// Resident keys dropped to fit the budget during the window.
    pub key_cache_evictions: u64,
    /// Median submit→completion latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile submit→completion latency, milliseconds.
    pub p99_ms: f64,
}

/// Renders a [`Value`] as indented JSON (two-space indent), matching
/// the compact writer's escaping and float formatting byte for byte —
/// `serde_json::from_str` of the output parses to the same value. The
/// vendored `serde_json` only writes compact JSON; committed snapshot
/// files go through this so they diff readably across PRs.
pub fn pretty_json(value: &Value) -> String {
    let mut out = String::new();
    write_pretty(value, 0, &mut out);
    out.push('\n');
    out
}

fn write_pretty(value: &Value, depth: usize, out: &mut String) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(depth + 1, out);
                write_pretty(item, depth + 1, out);
            }
            out.push('\n');
            push_indent(depth, out);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(depth + 1, out);
                out.push_str(&serde_json::to_string(key).expect("strings always serialize"));
                out.push_str(": ");
                write_pretty(item, depth + 1, out);
            }
            out.push('\n');
            push_indent(depth, out);
            out.push('}');
        }
        // Scalars and empty containers: defer to the compact writer so
        // escaping and float formatting stay identical.
        leaf => {
            out.push_str(&leaf_to_string(leaf));
        }
    }
}

fn push_indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn leaf_to_string(v: &Value) -> String {
    match v {
        Value::Null => "null".into(),
        Value::Bool(b) => b.to_string(),
        Value::U64(u) => u.to_string(),
        Value::I64(i) => i.to_string(),
        Value::F64(x) if x.is_finite() => format!("{x:?}"),
        Value::F64(_) => "null".into(),
        Value::Str(s) => serde_json::to_string(s).expect("strings always serialize"),
        Value::Array(_) => "[]".into(),
        Value::Object(_) => "{}".into(),
    }
}

/// Formats a markdown table from a header and rows.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", header.join(" | ")));
    out.push_str(&format!("|{}\n", "---|".repeat(header.len())));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// Formats an optional value with a unit, printing `–` for `None`
/// (the paper's blank-cell convention).
pub fn opt_cell(v: Option<f64>, precision: usize) -> String {
    match v {
        Some(x) => format!("{x:.precision$}"),
        None => "–".to_string(),
    }
}

/// Ratio of measured to reference, rendered as `×` with one decimal.
pub fn ratio_cell(measured: f64, reference: f64) -> String {
    if reference == 0.0 {
        return "–".into();
    }
    format!("{:.2}x", measured / reference)
}

/// A section banner for bench output.
pub fn banner(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

/// The header matching [`runtime_vs_simulator_rows`].
pub const RUNTIME_COMPARISON_HEADER: [&str; 6] =
    ["source", "epoch", "occupancy", "p50 latency", "p99 latency", "PBS/s"];

/// Renders the software runtime's measured report next to the
/// simulator's model of the same batching policy, as rows for
/// [`markdown_table`] under [`RUNTIME_COMPARISON_HEADER`]. This is how
/// measured software throughput sits beside the accelerator estimate
/// in the streaming bench output.
pub fn runtime_vs_simulator_rows(
    measured: &RuntimeReport,
    simulated: &PbsReport,
) -> Vec<Vec<String>> {
    vec![
        vec![
            "strix-runtime (measured)".into(),
            measured.epoch_capacity.to_string(),
            format!("{:.1}%", measured.mean_batch_occupancy * 100.0),
            format!("{:.3} ms", measured.p50_latency_us as f64 / 1e3),
            format!("{:.3} ms", measured.p99_latency_us as f64 / 1e3),
            format!("{:.1}", measured.achieved_pbs_per_s),
        ],
        vec![
            "strix-core (simulated)".into(),
            simulated.epoch_size.to_string(),
            "100.0%".into(),
            format!("{:.3} ms", simulated.latency_s * 1e3),
            format!("{:.3} ms", simulated.latency_s * 1e3),
            format!("{:.1}", simulated.throughput_pbs_per_s),
        ],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("|---|---|"));
        assert!(t.contains("| 1 | 2 |"));
    }

    #[test]
    fn optional_cells() {
        assert_eq!(opt_cell(Some(1.234), 2), "1.23");
        assert_eq!(opt_cell(None, 2), "–");
    }

    #[test]
    fn ratios() {
        assert_eq!(ratio_cell(74696.0, 10000.0), "7.47x");
        assert_eq!(ratio_cell(1.0, 0.0), "–");
    }

    #[test]
    fn banner_contains_title() {
        assert!(banner("Table V").contains("Table V"));
    }

    fn sample_service_report() -> ServiceBenchReport {
        ServiceBenchReport {
            schema: SERVICE_SCHEMA.into(),
            unix_time: 1_754_000_000,
            git_commit: "abc1234".into(),
            config: ServiceBenchConfig {
                params: "set_ii".into(),
                lwe_dimension: 742,
                polynomial_size: 2048,
                tvlp: 2,
                core_batch: 4,
                workers: 1,
                threads_per_worker: 1,
                clients: 8,
                max_delay_ms: 40.0,
                profile_every: 16,
                kernel_backend: "avx2".into(),
            },
            capacity_pbs_per_s: 37.25,
            trace_overhead_percent: 0.4,
            knee_pbs_per_s: 36.9,
            points: vec![ServiceLoadPoint {
                offered_pbs_per_s: 14.9,
                duration_s: 4.0,
                requests: 60,
                completed: 60,
                failed: 0,
                achieved_pbs_per_s: 14.7,
                p50_ms: 151.25,
                p90_ms: 230.0,
                p99_ms: 280.5,
                max_ms: 301.0,
                mean_occupancy: 0.52,
                queue_high_water: 9,
                mean_slip_ms: 0.08,
                saturated: false,
            }],
        }
    }

    #[test]
    fn service_report_round_trips_through_pretty_json() {
        let report = sample_service_report();
        let pretty = pretty_json(&serde_json::to_value(&report));
        let parsed: ServiceBenchReport =
            serde_json::from_str(&pretty).expect("pretty output parses");
        assert_eq!(parsed, report);
        // And through the compact writer, for good measure.
        let compact = serde_json::to_string(&report).unwrap();
        let parsed: ServiceBenchReport = serde_json::from_str(&compact).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn pretty_json_matches_compact_semantics() {
        let report = sample_service_report();
        let pretty = pretty_json(&serde_json::to_value(&report));
        let reparsed: ServiceBenchReport = serde_json::from_str(&pretty).expect("valid JSON");
        assert_eq!(
            serde_json::to_string(&reparsed).unwrap(),
            serde_json::to_string(&report).unwrap(),
            "pretty form must carry exactly the compact form's data"
        );
        // Indentation actually happened (the point of the pretty form),
        // and floats keep their shortest round-trip spelling.
        assert!(pretty.contains("\n  \"schema\": "));
        assert!(pretty.contains("\"p50_ms\": 151.25"));
    }

    #[test]
    fn committed_service_snapshot_parses_against_the_current_schema() {
        // The schema structs and the committed BENCH_service.json must
        // move together: a field rename that orphans the committed
        // baseline fails here, in CI, not at the next manual sweep.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
        let text = std::fs::read_to_string(path).expect("committed BENCH_service.json exists");
        let report: ServiceBenchReport =
            serde_json::from_str(&text).expect("committed snapshot matches schema");
        assert_eq!(report.schema, SERVICE_SCHEMA);
        assert!(report.points.len() >= 4, "sweep must bracket the knee");
        assert!(
            report.points.iter().any(|p| p.saturated),
            "at least one point past the saturation knee"
        );
        assert!(report.capacity_pbs_per_s > 0.0);
    }

    fn sample_tenants_report() -> TenantsBenchReport {
        TenantsBenchReport {
            schema: TENANTS_SCHEMA.into(),
            unix_time: 1_754_000_000,
            git_commit: "abc1234".into(),
            config: TenantsBenchConfig {
                params: "set_ii".into(),
                lwe_dimension: 742,
                polynomial_size: 2048,
                tvlp: 2,
                core_batch: 4,
                workers: 1,
                threads_per_worker: 1,
                max_delay_ms: 40.0,
                tenants_registered: 64,
                cache_budget_keys: 8,
                seeded_transport_bytes: 50_000_000,
                server_key_bytes: 100_000_000,
                kernel_backend: "avx2".into(),
            },
            points: vec![TenantsLoadPoint {
                hot_tenants: 8,
                requests: 384,
                completed: 384,
                failed: 0,
                duration_s: 6.8,
                aggregate_pbs_per_s: 56.5,
                mean_occupancy: 1.0,
                key_cache_hits: 48,
                key_cache_misses: 0,
                key_cache_evictions: 0,
                p50_ms: 420.5,
                p99_ms: 890.0,
            }],
        }
    }

    #[test]
    fn tenants_report_round_trips_through_pretty_json() {
        let report = sample_tenants_report();
        let pretty = pretty_json(&serde_json::to_value(&report));
        let parsed: TenantsBenchReport =
            serde_json::from_str(&pretty).expect("pretty output parses");
        assert_eq!(parsed, report);
        let compact = serde_json::to_string(&report).unwrap();
        let parsed: TenantsBenchReport = serde_json::from_str(&compact).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn committed_tenants_snapshot_parses_and_keeps_the_fabric_guarantees() {
        // The committed multi-tenant baseline must stay parseable and
        // keep the key-fabric acceptance properties: seeded transport
        // at most 0.6x the expanded key, and a hot set that fits the
        // cache budget retaining at least 0.8x of the single-tenant
        // point's throughput.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tenants.json");
        let text = std::fs::read_to_string(path).expect("committed BENCH_tenants.json exists");
        let report: TenantsBenchReport =
            serde_json::from_str(&text).expect("committed snapshot matches schema");
        assert_eq!(report.schema, TENANTS_SCHEMA);
        assert!(report.config.tenants_registered >= report.config.cache_budget_keys);
        assert!(
            report.config.seeded_transport_bytes as f64
                <= 0.6 * report.config.server_key_bytes as f64,
            "seeded transport must stay within 0.6x of the expanded key"
        );
        assert!(report.points.len() >= 3, "sweep covers 1 / budget / all-tenants hot counts");
        assert!(
            report.points.windows(2).all(|w| w[0].hot_tenants < w[1].hot_tenants),
            "points in ascending hot-tenant order"
        );
        let single = &report.points[0];
        assert_eq!(single.hot_tenants, 1);
        let budget_sized = report
            .points
            .iter()
            .find(|p| p.hot_tenants == report.config.cache_budget_keys)
            .expect("a point with the hot set exactly filling the budget");
        assert!(
            budget_sized.aggregate_pbs_per_s >= 0.8 * single.aggregate_pbs_per_s,
            "a budget-sized hot set must retain >= 0.8x single-tenant throughput \
             ({} vs {})",
            budget_sized.aggregate_pbs_per_s,
            single.aggregate_pbs_per_s
        );
        for point in &report.points {
            assert_eq!(point.failed, 0, "registered tenants never fail");
            assert_eq!(point.requests, point.completed);
        }
    }

    #[test]
    fn runtime_rows_render_into_the_table() {
        use strix_core::{StrixConfig, StrixSimulator};
        use strix_runtime::MetricsSink;
        use strix_tfhe::TfheParameters;

        let sink = MetricsSink::default();
        sink.record_epoch(32, 32);
        let measured = sink.report(32);
        let sim =
            StrixSimulator::new(StrixConfig::paper_default(), TfheParameters::set_i()).unwrap();
        let rows = runtime_vs_simulator_rows(&measured, &sim.pbs_report(4096));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), RUNTIME_COMPARISON_HEADER.len());
        let table = markdown_table(&RUNTIME_COMPARISON_HEADER, &rows);
        assert!(table.contains("strix-runtime (measured)"));
        assert!(table.contains("strix-core (simulated)"));
        assert!(table.contains("100.0%"));
    }
}
