//! Shared helpers for the benchmark harnesses: table formatting and
//! paper-vs-measured comparison rows.
//!
//! Every table and figure of the Strix paper has a matching bench
//! target in this crate (`cargo bench -p strix-bench --bench <name>`);
//! the helpers here keep their output format consistent so
//! `EXPERIMENTS.md` can be assembled from the printed blocks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use strix_core::PbsReport;
use strix_runtime::RuntimeReport;

/// Formats a markdown table from a header and rows.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", header.join(" | ")));
    out.push_str(&format!("|{}\n", "---|".repeat(header.len())));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// Formats an optional value with a unit, printing `–` for `None`
/// (the paper's blank-cell convention).
pub fn opt_cell(v: Option<f64>, precision: usize) -> String {
    match v {
        Some(x) => format!("{x:.precision$}"),
        None => "–".to_string(),
    }
}

/// Ratio of measured to reference, rendered as `×` with one decimal.
pub fn ratio_cell(measured: f64, reference: f64) -> String {
    if reference == 0.0 {
        return "–".into();
    }
    format!("{:.2}x", measured / reference)
}

/// A section banner for bench output.
pub fn banner(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

/// The header matching [`runtime_vs_simulator_rows`].
pub const RUNTIME_COMPARISON_HEADER: [&str; 6] =
    ["source", "epoch", "occupancy", "p50 latency", "p99 latency", "PBS/s"];

/// Renders the software runtime's measured report next to the
/// simulator's model of the same batching policy, as rows for
/// [`markdown_table`] under [`RUNTIME_COMPARISON_HEADER`]. This is how
/// measured software throughput sits beside the accelerator estimate
/// in the streaming bench output.
pub fn runtime_vs_simulator_rows(
    measured: &RuntimeReport,
    simulated: &PbsReport,
) -> Vec<Vec<String>> {
    vec![
        vec![
            "strix-runtime (measured)".into(),
            measured.epoch_capacity.to_string(),
            format!("{:.1}%", measured.mean_batch_occupancy * 100.0),
            format!("{:.3} ms", measured.p50_latency_us as f64 / 1e3),
            format!("{:.3} ms", measured.p99_latency_us as f64 / 1e3),
            format!("{:.1}", measured.achieved_pbs_per_s),
        ],
        vec![
            "strix-core (simulated)".into(),
            simulated.epoch_size.to_string(),
            "100.0%".into(),
            format!("{:.3} ms", simulated.latency_s * 1e3),
            format!("{:.3} ms", simulated.latency_s * 1e3),
            format!("{:.1}", simulated.throughput_pbs_per_s),
        ],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("|---|---|"));
        assert!(t.contains("| 1 | 2 |"));
    }

    #[test]
    fn optional_cells() {
        assert_eq!(opt_cell(Some(1.234), 2), "1.23");
        assert_eq!(opt_cell(None, 2), "–");
    }

    #[test]
    fn ratios() {
        assert_eq!(ratio_cell(74696.0, 10000.0), "7.47x");
        assert_eq!(ratio_cell(1.0, 0.0), "–");
    }

    #[test]
    fn banner_contains_title() {
        assert!(banner("Table V").contains("Table V"));
    }

    #[test]
    fn runtime_rows_render_into_the_table() {
        use strix_core::{StrixConfig, StrixSimulator};
        use strix_runtime::MetricsSink;
        use strix_tfhe::TfheParameters;

        let sink = MetricsSink::default();
        sink.record_epoch(32, 32);
        let measured = sink.report(32);
        let sim =
            StrixSimulator::new(StrixConfig::paper_default(), TfheParameters::set_i()).unwrap();
        let rows = runtime_vs_simulator_rows(&measured, &sim.pbs_report(4096));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), RUNTIME_COMPARISON_HEADER.len());
        let table = markdown_table(&RUNTIME_COMPARISON_HEADER, &rows);
        assert!(table.contains("strix-runtime (measured)"));
        assert!(table.contains("strix-core (simulated)"));
        assert!(table.contains("100.0%"));
    }
}
