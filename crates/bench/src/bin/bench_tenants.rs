//! Multi-tenant key-fabric sweep: aggregate throughput versus the
//! number of *hot* tenants sharing a fixed key-cache residency budget,
//! written to `BENCH_tenants.json` at the repo root — the committed
//! baseline for the registry-backed runtime, complementing
//! `BENCH_service.json`'s single-key numbers.
//!
//! Run from the workspace root (paths are relative to the cwd):
//!
//! ```text
//! cargo run --release -p strix-bench --bin bench_tenants
//! cargo run --release -p strix-bench --bin bench_tenants -- --fast --out /tmp/t.json
//! cargo run --release -p strix-bench --bin bench_tenants -- --baseline BENCH_tenants.json
//! ```
//!
//! The default registers 64 tenants (seeded transport form, benchmark
//! keygen) against a budget of 8 resident expanded keys and sweeps hot
//! sets of 1, 8 and 64 tenants. The three points tell the fabric's
//! whole story:
//!
//! * **1 hot** — the single-tenant reference: after one cold miss the
//!   cache is all-hits and throughput is the runtime's capacity.
//! * **8 hot** (= budget) — the design point: the working set exactly
//!   fills the budget, steady state is all-hits, and throughput must
//!   hold near the single-tenant line — this is the committed
//!   acceptance property.
//! * **64 hot** — deliberate thrash: every epoch's resolve misses and
//!   re-expands a seeded key, pricing key churn when the working set
//!   is 8x the budget.
//!
//! Each point floods the ingress from every hot tenant concurrently
//! (closed-loop, full epochs; the DRR batcher interleaves single-key
//! epochs across tenants), after a warmup pass that pays each hot
//! tenant's first-touch expansion outside the timed window. Cache
//! counters are taken as a before/after delta on the registry so
//! warmup does not pollute them.
//!
//! `--fast` switches to the tiny insecure test parameters and small
//! tenant counts (CI smoke). `--baseline <file>` compares warn-only
//! against a previous snapshot, skipping when the shape differs.

use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use strix_bench::{
    pretty_json, TenantsBenchConfig, TenantsBenchReport, TenantsLoadPoint, TENANTS_SCHEMA,
};
use strix_core::BatchGeometry;
use strix_runtime::{KeyRegistry, RequestOp, Runtime, RuntimeConfig, TenantId};
use strix_tfhe::bootstrap::Lut;
use strix_tfhe::lwe::LweCiphertext;
use strix_tfhe::torus::encode_fraction;
use strix_tfhe::{SeededServerKey, StrixFftBackend, TfheParameters};

struct Shape {
    params: TfheParameters,
    geometry: BatchGeometry,
    max_delay: Duration,
    /// Registered tenants (all seeded).
    tenants: usize,
    /// Residency budget, in whole expanded keys.
    budget_keys: usize,
    /// Hot-tenant counts to sweep, ascending.
    hot_counts: Vec<usize>,
    /// Target full epochs in each point's timed window (split across
    /// the hot tenants; every tenant always runs at least one epoch).
    window_epochs: usize,
}

impl Shape {
    fn new(fast: bool) -> Self {
        if fast {
            Self {
                params: TfheParameters::testing_fast(),
                geometry: BatchGeometry::explicit(2, 4),
                max_delay: Duration::from_millis(5),
                tenants: 8,
                budget_keys: 2,
                hot_counts: vec![1, 2, 8],
                window_epochs: 6,
            }
        } else {
            // Same runtime shape as bench_service (set II, 2x4 epochs,
            // one single-threaded worker) so the single-tenant point is
            // directly comparable to the committed service capacity.
            Self {
                params: TfheParameters::set_ii(),
                geometry: BatchGeometry::explicit(2, 4),
                max_delay: Duration::from_millis(40),
                tenants: 64,
                budget_keys: 8,
                hot_counts: vec![1, 8, 64],
                window_epochs: 48,
            }
        }
    }

    fn runtime_config(&self) -> RuntimeConfig {
        RuntimeConfig::new(self.geometry)
            .with_max_delay(self.max_delay)
            .with_workers(1)
            .with_threads_per_worker(1)
    }
}

/// Dense pseudo-random LWE masks (splitmix64); a zero-mask ciphertext
/// would modulus-switch to all-zero rotations and skip every CMUX, so
/// masks must be dense for the timing to be honest.
struct MaskGen(u64);

impl MaskGen {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn ciphertext(&mut self, lwe_dimension: usize) -> LweCiphertext {
        LweCiphertext::from_raw((0..=lwe_dimension).map(|_| self.next_u64()).collect())
    }
}

/// A fresh registry with every tenant registered in seeded form.
fn build_registry(shape: &Shape) -> Arc<KeyRegistry> {
    let registry =
        Arc::new(KeyRegistry::with_resident_keys(shape.params.clone(), shape.budget_keys));
    for t in 0..shape.tenants as u64 {
        registry.register_seeded(
            TenantId(t),
            SeededServerKey::for_benchmark(&shape.params, 0xB0B0 + t),
        );
    }
    registry
}

fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One point of the sweep: `hot` tenants flood a fresh registry-backed
/// runtime concurrently. Warmup runs one epoch per hot tenant (paying
/// first-touch expansions outside the window when the hot set fits the
/// budget; with more hot tenants than budget the thrash is the
/// measurement and warmup cannot hide it), then the timed window runs
/// the per-tenant backlogs to completion.
fn run_point(shape: &Shape, lut: &Arc<Lut>, hot: usize) -> TenantsLoadPoint {
    let registry = build_registry(shape);
    let runtime = Runtime::start_multi_tenant(shape.runtime_config(), Arc::clone(&registry));
    let epoch = shape.geometry.epoch_size();
    let per_tenant = epoch * (shape.window_epochs / hot).max(1);
    let lwe_dimension = shape.params.lwe_dimension;

    // Warmup: one full epoch per hot tenant, concurrently.
    std::thread::scope(|scope| {
        for t in 0..hot as u64 {
            let mut handle = runtime.client_for(TenantId(t));
            let lut = Arc::clone(lut);
            scope.spawn(move || {
                let mut masks = MaskGen(0x3A72 ^ t);
                for _ in 0..epoch {
                    let ct = masks.ciphertext(lwe_dimension);
                    handle.submit(ct, RequestOp::Lut(Arc::clone(&lut))).expect("runtime up");
                }
                for _ in 0..epoch {
                    handle.recv().expect("warmup response");
                }
            });
        }
    });

    let before = registry.stats();
    let t0 = Instant::now();
    let (latencies_ms, completed, failed) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..hot as u64)
            .map(|t| {
                let mut handle = runtime.client_for(TenantId(t));
                let lut = Arc::clone(lut);
                scope.spawn(move || {
                    let mut masks = MaskGen(0x7E4A ^ (t << 32));
                    for _ in 0..per_tenant {
                        let ct = masks.ciphertext(lwe_dimension);
                        handle.submit(ct, RequestOp::Lut(Arc::clone(&lut))).expect("runtime up");
                    }
                    let mut lat_ms = Vec::with_capacity(per_tenant);
                    let mut ok = 0usize;
                    let mut err = 0usize;
                    for _ in 0..per_tenant {
                        let response = handle.recv().expect("response arrives");
                        lat_ms.push(response.latency.as_secs_f64() * 1e3);
                        if response.result.is_ok() {
                            ok += 1;
                        } else {
                            err += 1;
                        }
                    }
                    (lat_ms, ok, err)
                })
            })
            .collect();
        let mut all = Vec::new();
        let (mut ok, mut err) = (0usize, 0usize);
        for handle in handles {
            let (lat_ms, o, e) = handle.join().expect("tenant thread");
            all.extend(lat_ms);
            ok += o;
            err += e;
        }
        (all, ok, err)
    });
    let wall = t0.elapsed();
    let after = registry.stats();
    let report = runtime.shutdown();

    let mut sorted = latencies_ms;
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    TenantsLoadPoint {
        hot_tenants: hot,
        requests: hot * per_tenant,
        completed,
        failed,
        duration_s: wall.as_secs_f64(),
        aggregate_pbs_per_s: completed as f64 / wall.as_secs_f64(),
        mean_occupancy: report.mean_batch_occupancy,
        key_cache_hits: after.hits - before.hits,
        key_cache_misses: after.misses - before.misses,
        key_cache_evictions: after.evictions - before.evictions,
        p50_ms: percentile_ms(&sorted, 50.0),
        p99_ms: percentile_ms(&sorted, 99.0),
    }
}

/// Best-effort short git commit hash of the working tree.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Warn-only comparison against a previous snapshot's contents (read
/// *before* the new snapshot is written, so `--baseline` may point at
/// the very file `--out` overwrites). Never fails the process.
fn compare_against_baseline(old: &str, baseline_path: &str, fresh: &TenantsBenchReport) {
    let old: TenantsBenchReport = match serde_json::from_str(old) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("bench_tenants: baseline {baseline_path} does not parse ({e:?}); skipped");
            return;
        }
    };
    if old.schema != fresh.schema || old.config != fresh.config {
        eprintln!(
            "bench_tenants: baseline shape ({} / {}) differs from measured ({} / {}); \
             comparison skipped",
            old.schema, old.config.params, fresh.schema, fresh.config.params
        );
        return;
    }
    for new_point in &fresh.points {
        let Some(old_point) = old.points.iter().find(|p| p.hot_tenants == new_point.hot_tenants)
        else {
            continue;
        };
        let speedup = new_point.aggregate_pbs_per_s / old_point.aggregate_pbs_per_s.max(1e-9);
        eprintln!(
            "bench_tenants: {} hot: {:.2} PBS/s -> {:.2} PBS/s ({speedup:.3}x vs {baseline_path})",
            new_point.hot_tenants, old_point.aggregate_pbs_per_s, new_point.aggregate_pbs_per_s
        );
        if new_point.aggregate_pbs_per_s < old_point.aggregate_pbs_per_s * 0.95 {
            eprintln!(
                "bench_tenants: WARNING: aggregate throughput at {} hot tenants regressed \
                 more than 5% vs baseline ({:.2} -> {:.2} PBS/s). Warn-only; not failing.",
                new_point.hot_tenants, old_point.aggregate_pbs_per_s, new_point.aggregate_pbs_per_s
            );
        }
    }
}

fn main() {
    let mut fast = false;
    let mut backend = StrixFftBackend::Auto;
    let mut out_path = String::from("BENCH_tenants.json");
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--backend" => {
                backend = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--backend <auto|portable|avx2|avx512>");
            }
            "--out" => out_path = args.next().expect("--out <path>"),
            "--baseline" => baseline = Some(args.next().expect("--baseline <file>")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    // Capture the baseline *now*, before anything writes `out_path`.
    let baseline_contents = baseline.as_ref().map(|p| (p.clone(), std::fs::read_to_string(p)));

    let mut shape = Shape::new(fast);
    shape.params = shape.params.with_fft_backend(backend);
    let kernel_backend = shape
        .params
        .fft_backend
        .resolve()
        .map(|b| b.label().to_string())
        .unwrap_or_else(|e| format!("unavailable: {e:?}"));
    let lut = Arc::new(Lut::sign(shape.params.polynomial_size, encode_fraction(1, 3)));
    eprintln!(
        "bench_tenants: params={} epoch={}x{} tenants={} budget={} keys backend={kernel_backend}",
        shape.params.name,
        shape.geometry.tvlp,
        shape.geometry.core_batch,
        shape.tenants,
        shape.budget_keys
    );

    let points: Vec<TenantsLoadPoint> = shape
        .hot_counts
        .iter()
        .map(|&hot| {
            let point = run_point(&shape, &lut, hot);
            eprintln!(
                "bench_tenants: {:>3} hot -> {:>7.2} PBS/s aggregate, {} hits / {} misses / \
                 {} evictions, p50 {:>8.1} ms, p99 {:>8.1} ms",
                point.hot_tenants,
                point.aggregate_pbs_per_s,
                point.key_cache_hits,
                point.key_cache_misses,
                point.key_cache_evictions,
                point.p50_ms,
                point.p99_ms
            );
            point
        })
        .collect();

    let report = TenantsBenchReport {
        schema: TENANTS_SCHEMA.into(),
        unix_time: SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0),
        git_commit: git_commit(),
        config: TenantsBenchConfig {
            params: shape.params.name.clone(),
            lwe_dimension: shape.params.lwe_dimension,
            polynomial_size: shape.params.polynomial_size,
            tvlp: shape.geometry.tvlp,
            core_batch: shape.geometry.core_batch,
            workers: 1,
            threads_per_worker: 1,
            max_delay_ms: shape.max_delay.as_secs_f64() * 1e3,
            tenants_registered: shape.tenants,
            cache_budget_keys: shape.budget_keys,
            seeded_transport_bytes: shape.params.seeded_server_key_bytes(),
            server_key_bytes: shape.params.server_key_bytes(),
            kernel_backend,
        },
        points,
    };

    let json = pretty_json(&serde_json::to_value(&report));
    std::fs::write(&out_path, &json).expect("write tenants snapshot");
    println!("{json}");
    eprintln!("bench_tenants: wrote {out_path}");
    match baseline_contents {
        Some((path, Ok(old))) => compare_against_baseline(&old, &path, &report),
        Some((path, Err(_))) => {
            eprintln!("bench_tenants: baseline {path} unreadable; comparison skipped");
        }
        None => {}
    }
}
