//! Closed-loop SLO sweep: open-loop Poisson clients drive the full
//! streaming runtime at a ladder of offered loads bracketing the
//! saturation knee, and the resulting p50/p99-vs-load curve is written
//! to `BENCH_service.json` at the repo root — the committed service
//! baseline successive PRs compare themselves against, complementing
//! `BENCH_pbs.json`'s kernel-level numbers with end-to-end ones.
//!
//! Run from the workspace root (paths are relative to the cwd):
//!
//! ```text
//! cargo run --release -p strix-bench --bin bench_service
//! cargo run --release -p strix-bench --bin bench_service -- --fast --out /tmp/s.json
//! cargo run --release -p strix-bench --bin bench_service -- --baseline BENCH_service.json
//! ```
//!
//! `--fast` switches to the tiny insecure test parameters and a short
//! schedule (CI smoke); the default is the paper's 128-bit set II on
//! the timing-equivalent benchmark server key. The sweep first
//! measures the runtime's fixed-backlog capacity (every epoch full),
//! then places the offered-load points as fractions of it, ending past
//! 1.0× so the last point is provably beyond the knee.
//!
//! **Latency accounting.** Each request's latency is measured from its
//! *scheduled* Poisson arrival, not from when `submit` unblocked: past
//! saturation the ingress backpressure makes submits block and the
//! schedule slip, and charging that slip to the request is what makes
//! the p99 curve bend upward at the knee instead of flattening at the
//! queue depth (the coordinated-omission trap).
//!
//! The sweep runs with tracing and stage sampling at their production
//! defaults; a second capacity measurement with both disabled prices
//! that telemetry, and the measured overhead is recorded in the
//! snapshot (`trace_overhead_percent`).
//!
//! `--backend auto|portable|avx2|avx512` (default `auto`) forces the
//! SIMD kernel backend the runtime's spectral transforms run on; the
//! snapshot's config block records the resolved tier.
//!
//! `--baseline <file>` compares against a previous snapshot, warn-only
//! (exit status stays 0): CI surfaces the report, humans judge it.
//! Comparisons are skipped when the baseline's shape — parameters,
//! geometry, or kernel backend — differs from the measured run.

use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use strix_bench::{
    pretty_json, ServiceBenchConfig, ServiceBenchReport, ServiceLoadPoint, SERVICE_SCHEMA,
};
use strix_core::BatchGeometry;
use strix_runtime::{
    ArrivalProcess, OpenLoopTrafficGen, RequestOp, Runtime, RuntimeConfig, TraceConfig,
};
use strix_tfhe::bootstrap::Lut;
use strix_tfhe::lwe::LweCiphertext;
use strix_tfhe::torus::encode_fraction;
use strix_tfhe::{ServerKey, StrixFftBackend, TfheParameters};

/// Offered loads as fractions of measured capacity. The last rung sits
/// well past 1.0× so its excess arrivals outrun the system's whole
/// buffer budget (ingress + epoch queue + in-flight epoch) within the
/// schedule, forcing backpressure to block submits — the committed
/// curve always shows the far side of the knee.
const LOAD_FRACTIONS: [f64; 5] = [0.4, 0.7, 0.9, 1.1, 1.5];

/// Capacity legs per telemetry setting; the best (least-disturbed) run
/// counts, since scheduler interruptions on a small shared box only
/// ever push the number down.
const CAPACITY_REPS: usize = 3;

/// Concurrent client streams (one thread each).
const CLIENTS: usize = 8;

/// A point is saturated when achieved throughput falls measurably
/// short of offered — the runtime, not the schedule, set the pace.
/// Guarded by an actual schedule slip (see `run_load_point`) so the
/// idle lead-in of a lightly loaded schedule can't trip it.
const SATURATION_SHORTFALL: f64 = 0.92;

struct Shape {
    params: TfheParameters,
    geometry: BatchGeometry,
    max_delay: Duration,
    /// Arrival-schedule length per load point.
    duration: Duration,
    /// Full epochs in the timed leg of a capacity measurement.
    capacity_epochs: usize,
}

impl Shape {
    fn new(fast: bool) -> Self {
        if fast {
            Self {
                params: TfheParameters::testing_fast(),
                geometry: BatchGeometry::explicit(2, 4),
                max_delay: Duration::from_millis(5),
                duration: Duration::from_millis(800),
                capacity_epochs: 6,
            }
        } else {
            // An 8-slot epoch keeps single-epoch service time around
            // 200 ms at set II on one core — small enough for an
            // interactive SLO, large enough that occupancy matters.
            Self {
                params: TfheParameters::set_ii(),
                geometry: BatchGeometry::explicit(2, 4),
                max_delay: Duration::from_millis(40),
                duration: Duration::from_secs(6),
                capacity_epochs: 12,
            }
        }
    }

    fn runtime_config(&self, telemetry: bool) -> RuntimeConfig {
        let base = RuntimeConfig::new(self.geometry)
            .with_max_delay(self.max_delay)
            .with_workers(1)
            .with_threads_per_worker(1);
        if telemetry {
            base // production defaults: tracing on, profile_every = 16
        } else {
            base.with_trace(TraceConfig::disabled()).with_profile_every(0)
        }
    }
}

/// Dense pseudo-random LWE masks (splitmix64): a trivial zero-mask
/// ciphertext would modulus-switch to all-zero rotations and skip
/// every CMUX, so the masks must be dense for the timing to be honest.
struct MaskGen(u64);

impl MaskGen {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn ciphertext(&mut self, lwe_dimension: usize) -> LweCiphertext {
        LweCiphertext::from_raw((0..=lwe_dimension).map(|_| self.next_u64()).collect())
    }
}

/// Fixed-backlog capacity: one client floods the ingress so every
/// epoch flushes full, and the steady-state PBS/s is measured over
/// `capacity_epochs` epochs after a one-epoch warmup.
fn measure_capacity(
    shape: &Shape,
    server: &Arc<ServerKey>,
    lut: &Arc<Lut>,
    telemetry: bool,
) -> f64 {
    let runtime = Runtime::start_tfhe(shape.runtime_config(telemetry), Arc::clone(server));
    let mut handle = runtime.client();
    let mut masks = MaskGen(0x5eed + telemetry as u64);
    let epoch = shape.geometry.epoch_size();

    for _ in 0..epoch {
        let ct = masks.ciphertext(shape.params.lwe_dimension);
        handle.submit(ct, RequestOp::Lut(Arc::clone(lut))).expect("runtime up");
    }
    for _ in 0..epoch {
        handle.recv().expect("warmup response");
    }

    let total = epoch * shape.capacity_epochs;
    let t0 = Instant::now();
    for _ in 0..total {
        let ct = masks.ciphertext(shape.params.lwe_dimension);
        handle.submit(ct, RequestOp::Lut(Arc::clone(lut))).expect("runtime up");
    }
    for _ in 0..total {
        handle.recv().expect("capacity response");
    }
    let wall = t0.elapsed();
    drop(handle);
    runtime.shutdown();
    total as f64 / wall.as_secs_f64()
}

fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One rung of the sweep: `CLIENTS` threads replay independent Poisson
/// schedules totalling `offered` PBS/s against a fresh runtime, then
/// the runtime's own report supplies throughput/occupancy while the
/// client-side schedule supplies the latency distribution.
fn run_load_point(
    shape: &Shape,
    server: &Arc<ServerKey>,
    lut: &Arc<Lut>,
    offered: f64,
    seed: u64,
) -> ServiceLoadPoint {
    let runtime = Runtime::start_tfhe(shape.runtime_config(true), Arc::clone(server));
    let per_client_rate = offered / CLIENTS as f64;
    let per_client = ((per_client_rate * shape.duration.as_secs_f64()).round() as usize).max(1);
    let traffic =
        OpenLoopTrafficGen::new(ArrivalProcess::Poisson { rate_hz: per_client_rate }, seed);

    let mut slips_ms: Vec<f64> = Vec::new();
    let mut latencies_ms: Vec<f64> = std::thread::scope(|scope| {
        let start = Instant::now();
        let handles: Vec<_> = (0..CLIENTS as u64)
            .map(|client_idx| {
                let mut handle = runtime.client();
                let lut = Arc::clone(lut);
                let delays = traffic.inter_arrivals(client_idx, per_client);
                let lwe_dimension = shape.params.lwe_dimension;
                scope.spawn(move || {
                    let mut masks = MaskGen(0xC11E47 ^ (client_idx << 32) ^ seed);
                    // Per-seq schedule slip: submit_time - scheduled
                    // arrival, charged to the request on top of the
                    // runtime-measured submit→completion latency.
                    let mut slip = vec![Duration::ZERO; per_client];
                    let mut lat_ms = Vec::with_capacity(per_client);
                    let mut received = 0usize;
                    let mut scheduled = start;
                    for (i, delay) in delays.iter().enumerate() {
                        scheduled += *delay;
                        let now = Instant::now();
                        if now < scheduled {
                            std::thread::sleep(scheduled - now);
                        }
                        let submit_time = Instant::now();
                        slip[i] = submit_time.saturating_duration_since(scheduled);
                        let ct = masks.ciphertext(lwe_dimension);
                        handle.submit(ct, RequestOp::Lut(Arc::clone(&lut))).expect("runtime up");
                        while let Some(response) = handle.try_recv() {
                            let total = slip[response.seq as usize] + response.latency;
                            lat_ms.push(total.as_secs_f64() * 1e3);
                            received += 1;
                        }
                    }
                    while received < per_client {
                        let response = handle.recv().expect("response arrives");
                        let total = slip[response.seq as usize] + response.latency;
                        lat_ms.push(total.as_secs_f64() * 1e3);
                        received += 1;
                    }
                    (lat_ms, slip)
                })
            })
            .collect();
        let mut all = Vec::new();
        for handle in handles {
            let (lat_ms, slip) = handle.join().expect("client thread");
            all.extend(lat_ms);
            slips_ms.extend(slip.iter().map(|d| d.as_secs_f64() * 1e3));
        }
        all
    });
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

    let report = runtime.shutdown();
    let achieved = report.achieved_pbs_per_s;
    let mean_slip_ms = slips_ms.iter().sum::<f64>() / slips_ms.len().max(1) as f64;
    // Saturation needs both signals: a throughput shortfall alone can
    // be the schedule's idle lead-in; a slipped schedule alone can be
    // scheduler wakeup jitter. Together they mean the runtime set the
    // pace — the definition of being past the knee.
    let slipped = mean_slip_ms > shape.max_delay.as_secs_f64() * 1e3;
    ServiceLoadPoint {
        offered_pbs_per_s: offered,
        duration_s: shape.duration.as_secs_f64(),
        requests: CLIENTS * per_client,
        completed: report.requests_completed,
        failed: report.requests_failed,
        achieved_pbs_per_s: achieved,
        p50_ms: percentile_ms(&latencies_ms, 50.0),
        p90_ms: percentile_ms(&latencies_ms, 90.0),
        p99_ms: percentile_ms(&latencies_ms, 99.0),
        max_ms: latencies_ms.last().copied().unwrap_or(0.0),
        mean_occupancy: report.mean_batch_occupancy,
        queue_high_water: report.ingress_queue_high_water,
        mean_slip_ms,
        saturated: achieved < offered * SATURATION_SHORTFALL && slipped,
    }
}

/// Best-effort short git commit hash of the working tree.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Warn-only comparison against a previous snapshot's contents (read
/// *before* the new snapshot is written, so `--baseline` may point at
/// the very file `--out` overwrites). Never fails the process.
fn compare_against_baseline(old: &str, baseline_path: &str, fresh: &ServiceBenchReport) {
    let old: ServiceBenchReport = match serde_json::from_str(old) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("bench_service: baseline {baseline_path} does not parse ({e:?}); skipped");
            return;
        }
    };
    if old.schema != fresh.schema || old.config != fresh.config {
        eprintln!(
            "bench_service: baseline shape ({} / {}) differs from measured ({} / {}); \
             comparison skipped",
            old.schema, old.config.params, fresh.schema, fresh.config.params
        );
        return;
    }
    let speedup = fresh.knee_pbs_per_s / old.knee_pbs_per_s.max(1e-9);
    eprintln!(
        "bench_service: baseline knee {:.2} PBS/s -> {:.2} PBS/s ({speedup:.3}x vs {baseline_path})",
        old.knee_pbs_per_s, fresh.knee_pbs_per_s
    );
    if fresh.knee_pbs_per_s < old.knee_pbs_per_s * 0.95 {
        eprintln!(
            "bench_service: WARNING: saturation knee regressed more than 5% vs baseline \
             ({:.2} -> {:.2} PBS/s). Warn-only; not failing.",
            old.knee_pbs_per_s, fresh.knee_pbs_per_s
        );
    }
    for (old_point, new_point) in old.points.iter().zip(&fresh.points) {
        if !old_point.saturated
            && !new_point.saturated
            && new_point.p99_ms > old_point.p99_ms * 1.25
        {
            eprintln!(
                "bench_service: WARNING: p99 at {:.1} PBS/s regressed {:.1} -> {:.1} ms. \
                 Warn-only; not failing.",
                new_point.offered_pbs_per_s, old_point.p99_ms, new_point.p99_ms
            );
        }
    }
}

fn main() {
    let mut fast = false;
    let mut backend = StrixFftBackend::Auto;
    let mut out_path = String::from("BENCH_service.json");
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--backend" => {
                backend = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--backend <auto|portable|avx2|avx512>");
            }
            "--out" => out_path = args.next().expect("--out <path>"),
            "--baseline" => baseline = Some(args.next().expect("--baseline <file>")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    // Capture the baseline *now*, before anything writes `out_path`.
    let baseline_contents = baseline.as_ref().map(|p| (p.clone(), std::fs::read_to_string(p)));

    let mut shape = Shape::new(fast);
    shape.params = shape.params.with_fft_backend(backend);
    let server = Arc::new(ServerKey::generate_for_benchmark(&shape.params, 0xBE7C));
    let kernel_backend = server.fft_backend().label().to_string();
    let lut = Arc::new(Lut::sign(shape.params.polynomial_size, encode_fraction(1, 3)));
    eprintln!(
        "bench_service: params={} epoch={}x{} clients={CLIENTS} duration={:?}/point \
         backend={kernel_backend}",
        shape.params.name, shape.geometry.tvlp, shape.geometry.core_batch, shape.duration
    );

    // Capacity with production telemetry (tracing + every-16th-epoch
    // stage sampling), then with all telemetry off to price it. Legs
    // alternate order rep to rep so warmup state and slow background
    // drift hit both settings equally, and the best leg per setting
    // counts (interruptions only ever push a leg down).
    let mut capacity = 0.0f64;
    let mut capacity_untraced = 0.0f64;
    for rep in 0..CAPACITY_REPS {
        for telemetry in [rep % 2 == 0, rep % 2 != 0] {
            let leg = measure_capacity(&shape, &server, &lut, telemetry);
            eprintln!(
                "bench_service: capacity leg {rep}/{}: {leg:.2} PBS/s",
                if telemetry { "telemetry" } else { "bare" }
            );
            if telemetry {
                capacity = capacity.max(leg);
            } else {
                capacity_untraced = capacity_untraced.max(leg);
            }
        }
    }
    let trace_overhead_percent = (capacity_untraced - capacity) / capacity_untraced * 100.0;
    eprintln!(
        "bench_service: capacity {capacity:.2} PBS/s traced, {capacity_untraced:.2} untraced \
         (telemetry overhead {trace_overhead_percent:.2}%)"
    );

    let points: Vec<ServiceLoadPoint> = LOAD_FRACTIONS
        .iter()
        .enumerate()
        .map(|(i, fraction)| {
            let offered = capacity * fraction;
            let point = run_load_point(&shape, &server, &lut, offered, 0xA11CE + i as u64);
            eprintln!(
                "bench_service: offered {:>7.2} PBS/s -> achieved {:>7.2}, p50 {:>8.1} ms, \
                 p99 {:>8.1} ms, occupancy {:.2}{}",
                point.offered_pbs_per_s,
                point.achieved_pbs_per_s,
                point.p50_ms,
                point.p99_ms,
                point.mean_occupancy,
                if point.saturated { "  [saturated]" } else { "" }
            );
            point
        })
        .collect();
    let knee_pbs_per_s = points.iter().map(|p| p.achieved_pbs_per_s).fold(0.0f64, f64::max);

    let report = ServiceBenchReport {
        schema: SERVICE_SCHEMA.into(),
        unix_time: SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0),
        git_commit: git_commit(),
        config: ServiceBenchConfig {
            params: shape.params.name.clone(),
            lwe_dimension: shape.params.lwe_dimension,
            polynomial_size: shape.params.polynomial_size,
            tvlp: shape.geometry.tvlp,
            core_batch: shape.geometry.core_batch,
            workers: 1,
            threads_per_worker: 1,
            clients: CLIENTS,
            max_delay_ms: shape.max_delay.as_secs_f64() * 1e3,
            profile_every: 16,
            kernel_backend,
        },
        capacity_pbs_per_s: capacity,
        trace_overhead_percent,
        knee_pbs_per_s,
        points,
    };

    let json = pretty_json(&serde_json::to_value(&report));
    std::fs::write(&out_path, &json).expect("write service snapshot");
    println!("{json}");
    eprintln!("bench_service: wrote {out_path}");
    match baseline_contents {
        Some((path, Ok(old))) => compare_against_baseline(&old, &path, &report),
        Some((path, Err(_))) => {
            eprintln!("bench_service: baseline {path} unreadable; comparison skipped");
        }
        None => {}
    }
}
