//! Static noise-budget report for the shipped Program workloads.
//!
//! Runs the `strix-runtime` program analyzer (the same abstract
//! interpreter the runtime consults at session admission) over the
//! repository's shipped dataflow workloads — the ripple-carry adder,
//! the bitwise equality circuit and the Deep-NN ReLU schedule — under
//! both PBS kernels the dispatcher can select, and prints each
//! program's budget table: request count, bootstrap depth, worst-case
//! linear gain and the minimum decision margin in sigmas.
//!
//! ```text
//! cargo run -p strix-bench --bin analyze_program
//! cargo run -p strix-bench --bin analyze_program -- --check
//! cargo run -p strix-bench --bin analyze_program -- --check --threshold 12
//! ```
//!
//! `--check` turns the report into a gate: exit status 1 if any
//! workload's worst margin falls below the threshold (default 10σ, the
//! bound the parameter sets are documented to keep). CI runs this next
//! to the test suite so a parameter or noise-model change that erodes
//! the shipped margins fails loudly with the offending node named.
//!
//! Unlike `bench_snapshot`/`bench_service`, this tool takes no
//! `--backend` override: every SIMD kernel backend is bit-identical to
//! the portable scalar path, so the noise margins cannot depend on
//! which tier the CPU dispatch selects.

use std::process::ExitCode;

use strix_runtime::session::Program;
use strix_runtime::{AdmissionPolicy, KernelPolicy, ProgramAnalysis};
use strix_tfhe::{PbsKernel, TfheParameters};
use strix_workloads::gates::{equality_program, ripple_carry_adder_program};
use strix_workloads::ReluSchedule;

/// Margin every shipped workload must clear in `--check` mode.
const CHECK_THRESHOLD_SIGMAS: f64 = 10.0;

/// Adder/equality operand width: the paper's gate workloads run 8-bit
/// words.
const GATE_BITS: usize = 8;

/// Deep-NN schedule shape: depth 20 is the smallest Zama variant; the
/// width is the schedule's fan-in cap.
const NN_DEPTH: usize = 20;
const NN_WIDTH: usize = 3;
const NN_SEED: u64 = 0x5EED_AA01;

struct Row {
    workload: &'static str,
    params: String,
    kernel: PbsKernel,
    analysis: ProgramAnalysis,
}

fn analyze(program: &Program, params: &TfheParameters, kernel: PbsKernel) -> ProgramAnalysis {
    AdmissionPolicy::new(params.clone(), KernelPolicy::uniform(kernel)).analyze(program)
}

fn kernel_label(kernel: PbsKernel) -> String {
    match kernel {
        PbsKernel::Classical => "classical".into(),
        PbsKernel::MultiBit { grouping_factor } => format!("multi-bit g={grouping_factor}"),
    }
}

fn rows() -> Result<Vec<Row>, String> {
    let kernels = [PbsKernel::Classical, PbsKernel::MultiBit { grouping_factor: 3 }];
    let mut rows = Vec::new();

    // Gate circuits: analyzed under the headline 128-bit set (the
    // adder/equality examples and benches run set II).
    let gate_params = TfheParameters::set_ii();
    let adder = ripple_carry_adder_program(GATE_BITS);
    let equality = equality_program(GATE_BITS);
    for kernel in kernels {
        rows.push(Row {
            workload: "adder-8bit",
            params: gate_params.name.clone(),
            kernel,
            analysis: analyze(&adder, &gate_params, kernel),
        });
        rows.push(Row {
            workload: "equality-8bit",
            params: gate_params.name.clone(),
            kernel,
            analysis: analyze(&equality, &gate_params, kernel),
        });
    }

    // The Deep-NN ReLU schedule, at every polynomial size the paper
    // evaluates (Fig. 7).
    for poly in strix_workloads::nn::ZAMA_POLY_SIZES {
        let params = TfheParameters::deep_nn(poly).map_err(|e| e.to_string())?;
        let schedule = ReluSchedule::new(NN_DEPTH, NN_WIDTH, NN_SEED);
        let program = schedule.program(poly).map_err(|e| e.to_string())?;
        for kernel in kernels {
            rows.push(Row {
                workload: "deep-nn-relu",
                params: params.name.clone(),
                kernel,
                analysis: analyze(&program, &params, kernel),
            });
        }
    }
    Ok(rows)
}

fn print_table(rows: &[Row], threshold: f64) {
    println!("# Static noise-budget analysis (threshold: {threshold:.1} sigmas)");
    println!();
    println!(
        "| workload | params | kernel | requests | pbs depth | max gain | worst margin (σ) | verdict |"
    );
    println!("|---|---|---|---:|---:|---:|---:|---|");
    for row in rows {
        let a = &row.analysis;
        let verdict = if a.worst_margin_sigmas() >= threshold { "pass" } else { "FAIL" };
        println!(
            "| {} | {} | {} | {} | {} | {:.0} | {:.1} | {} |",
            row.workload,
            row.params,
            kernel_label(row.kernel),
            a.reports.len(),
            a.pbs_depth,
            a.max_linear_gain,
            a.worst_margin_sigmas(),
            verdict,
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut threshold = CHECK_THRESHOLD_SIGMAS;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => check = true,
            "--threshold" => {
                i += 1;
                threshold = match args.get(i).map(|s| s.parse::<f64>()) {
                    Some(Ok(t)) => t,
                    _ => {
                        eprintln!("--threshold needs a numeric argument");
                        return ExitCode::FAILURE;
                    }
                };
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: analyze_program [--check] [--threshold SIGMAS]");
                eprintln!(
                    "note: margins are SIMD-backend-independent (every STRIX_FFT_BACKEND \
                     tier is bit-identical), so there is no --backend flag here"
                );
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let rows = match rows() {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("failed to build workload programs: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_table(&rows, threshold);

    let worst = rows.iter().min_by(|a, b| {
        a.analysis.worst_margin_sigmas().total_cmp(&b.analysis.worst_margin_sigmas())
    });
    if let Some(row) = worst {
        println!();
        let a = &row.analysis;
        match a.worst_report() {
            Some(r) => println!(
                "Tightest node overall: {} / {} node {} at {:.1} sigmas \
                 (variance {:.3e}, distance {:.3e}).",
                row.workload,
                kernel_label(row.kernel),
                r.node,
                r.margin_sigmas,
                r.decision_variance,
                r.decision_distance,
            ),
            None => println!("No program bootstraps; nothing to bound."),
        }
    }

    if check {
        let failed: Vec<&Row> =
            rows.iter().filter(|r| r.analysis.worst_margin_sigmas() < threshold).collect();
        if !failed.is_empty() {
            eprintln!();
            for row in &failed {
                eprintln!(
                    "FAIL: {} under {} ({}): worst margin {:.1} < {threshold:.1} sigmas",
                    row.workload,
                    kernel_label(row.kernel),
                    row.params,
                    row.analysis.worst_margin_sigmas(),
                );
            }
            return ExitCode::FAILURE;
        }
        println!("\nanalyze_program --check: every workload clears {threshold:.1} sigmas.");
    }
    ExitCode::SUCCESS
}
