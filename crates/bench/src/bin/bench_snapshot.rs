//! Perf-trajectory snapshot: a fixed PBS + FFT workload whose numbers
//! are written to `BENCH_pbs.json` at the repo root, so successive PRs
//! have a committed baseline to compare against.
//!
//! Run from the workspace root (paths are relative to the cwd):
//!
//! ```text
//! cargo run --release -p strix-bench --bin bench_snapshot
//! cargo run --release -p strix-bench --bin bench_snapshot -- --fast --out /tmp/s.json
//! cargo run --release -p strix-bench --bin bench_snapshot -- --baseline BENCH_pbs.json
//! ```
//!
//! `--fast` switches to the tiny insecure test parameters (CI smoke);
//! the default is the paper's 128-bit set II, measured with the
//! timing-equivalent benchmark bootstrapping key (same arithmetic
//! shape as a real key, instant keygen). `--threads T` sets the
//! intra-epoch shard count fed to `bootstrap_batch_parallel`.
//!
//! `--kernel both|classical|multi_bit` (default `both`) selects which
//! PBS kernels to measure: the classical blind rotation, the grouped
//! multi-bit blind rotation (`--grouping G`, default 3 — the faster
//! configuration on the reference container), or both side by side. The emitted JSON carries a `pbs` block per measured
//! kernel, so the committed snapshot records the per-kernel ms/PBS the
//! kernel-selection enum chooses between.
//!
//! Each snapshot also records the git commit it was measured at and a
//! **per-stage breakdown** of one PBS (decompose / forward FFT / VMA /
//! inverse FFT / rotate / modswitch / sample-extract µs), taken with
//! the timing probe over the *production* blocked CMUX kernel, so the
//! committed JSON explains *where* a regression or win lives, not just
//! that one happened.
//!
//! `--backend auto|portable|avx2|avx512` (default `auto`) forces the
//! SIMD kernel backend the measured transforms run on; the snapshot
//! records the *resolved* backend (`kernel_backend`) plus the host's
//! detected CPU features, and a `fft_backends` table timing every
//! backend available on the host side by side. The per-backend rows
//! run the batched SoA entry points (per-transform µs at a batch of
//! 8) — the path the SIMD dispatch actually covers; the `fft` rows
//! keep the historical single-transform measurement.
//!
//! `--baseline <file>` compares the fresh numbers against a previous
//! snapshot and prints a warn-only report (exit status stays 0 — CI
//! uses it as a visibility check, not a gate, since container timing
//! is noisy). Comparisons are skipped when the baseline was measured
//! at different parameters, thread/batch shape, or kernel backend.

use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use strix_fft::{detected_cpu_features, Complex64, NegacyclicFft, SoaSpectrum, StrixFftBackend};
use strix_tfhe::bootstrap::{BootstrapKey, Lut, MultiBitBootstrapKey, PbsJob};
use strix_tfhe::lwe::LweCiphertext;
use strix_tfhe::profiler::{PbsStage, StageTimings};
use strix_tfhe::torus::encode_fraction;
use strix_tfhe::TfheParameters;

/// Wall-clock budget per measured quantity.
const BUDGET: Duration = Duration::from_millis(300);

/// Times `f` adaptively: one calibration call, then enough iterations
/// to fill the budget. Returns mean seconds per call.
fn time_per_call<F: FnMut()>(mut f: F) -> f64 {
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().max(Duration::from_nanos(50));
    let iters = (BUDGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

struct FftRow {
    n: usize,
    forward_us: f64,
    inverse_us: f64,
    pair_us: f64,
}

fn measure_fft(n: usize, backend: StrixFftBackend) -> FftRow {
    let fft = NegacyclicFft::with_backend(n, backend).unwrap();
    let poly: Vec<i64> = (0..n as i64).map(|i| (i * 31 % 1024) - 512).collect();
    let mut spec = vec![Complex64::ZERO; n / 2];
    let mut time = vec![0.0f64; n];

    let forward = time_per_call(|| fft.forward_i64(&poly, &mut spec).unwrap());
    fft.forward_i64(&poly, &mut spec).unwrap();
    let inverse = time_per_call(|| {
        // The inverse consumes the spectrum as scratch; refresh it so
        // every iteration transforms honest data.
        let mut s = spec.clone();
        fft.backward_f64(&mut s, &mut time).unwrap();
    });
    let clone_cost = time_per_call(|| {
        let s = spec.clone();
        std::hint::black_box(&s);
    });
    let pair = time_per_call(|| {
        fft.forward_i64(&poly, &mut spec).unwrap();
        fft.backward_f64(&mut spec, &mut time).unwrap();
    });
    FftRow {
        n,
        forward_us: forward * 1e6,
        inverse_us: (inverse - clone_cost).max(0.0) * 1e6,
        pair_us: pair * 1e6,
    }
}

/// Batch width of the per-backend rows: the criterion bench and the
/// CMUX hot path both run batches of this order ((k+1)·l digit
/// polynomials per external product).
const BACKEND_FFT_BATCH: usize = 8;

/// Measures the *batched SoA* entry points (`forward_i64_many` /
/// `backward_f64_many`) on one backend, reporting per-transform µs.
/// These — not the single interleaved transforms above — are what the
/// SIMD backends dispatch, so this is the row where a tier's speedup
/// (or regression) is visible.
fn measure_fft_batched(n: usize, backend: StrixFftBackend) -> FftRow {
    let fft = NegacyclicFft::with_backend(n, backend).unwrap();
    let polys: Vec<i64> =
        (0..(n * BACKEND_FFT_BATCH) as i64).map(|i| (i * 31 % 1024) - 512).collect();
    let mut spec = SoaSpectrum::new(BACKEND_FFT_BATCH, n / 2);
    let mut time = vec![0.0f64; n * BACKEND_FFT_BATCH];

    let forward = time_per_call(|| fft.forward_i64_many(&polys, &mut spec).unwrap());
    fft.forward_i64_many(&polys, &mut spec).unwrap();
    let inverse = time_per_call(|| {
        // The inverse consumes the batch as scratch; refresh it so
        // every iteration transforms honest data.
        let mut s = spec.clone();
        fft.backward_f64_many(&mut s, &mut time).unwrap();
    });
    let clone_cost = time_per_call(|| {
        let s = spec.clone();
        std::hint::black_box(&s);
    });
    let pair = time_per_call(|| {
        fft.forward_i64_many(&polys, &mut spec).unwrap();
        fft.backward_f64_many(&mut spec, &mut time).unwrap();
    });
    let per_transform_us = 1e6 / BACKEND_FFT_BATCH as f64;
    FftRow {
        n,
        forward_us: forward * per_transform_us,
        inverse_us: (inverse - clone_cost).max(0.0) * per_transform_us,
        pair_us: pair * per_transform_us,
    }
}

/// Best-effort short git commit hash of the working tree (snapshots
/// are committed alongside the code they measured, so the hash pins
/// the *parent* of the committing revision — close enough to navigate
/// back to the kernel that produced the numbers).
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Pulls `"key": value` out of a flat JSON snapshot without a parser
/// dependency — the snapshot schema is ours and machine-written, so a
/// scan for the quoted key is reliable enough for a warn-only check.
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest.find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))?;
    rest[..end].parse().ok()
}

fn json_string(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": \"");
    let at = json.find(&needle)? + needle.len();
    let end = json[at..].find('"')?;
    Some(json[at..at + end].to_string())
}

/// Warn-only comparison against a previous snapshot's contents (read
/// *before* the new snapshot is written, so `--baseline` may point at
/// the very file `--out` overwrites). Never fails the process: CI
/// surfaces the report, humans judge it.
fn compare_against_baseline(
    old: &str,
    baseline_path: &str,
    params_name: &str,
    threads: usize,
    batch: usize,
    backend: &str,
    per_pbs_ms: f64,
) {
    let old_name = json_string(old, "name").unwrap_or_default();
    if old_name != params_name {
        eprintln!(
            "bench_snapshot: baseline params ({old_name}) differ from measured \
             ({params_name}); comparison skipped"
        );
        return;
    }
    // A v2 baseline carries no `kernel_backend`: those numbers predate
    // the SIMD tiers and remain comparable (a backend win *should*
    // show against them). A v3 baseline from a different backend is a
    // different machine configuration, not a code change.
    if let Some(old_backend) = json_string(old, "kernel_backend") {
        if old_backend != backend {
            eprintln!(
                "bench_snapshot: baseline backend ({old_backend}) differs from measured \
                 ({backend}); comparison skipped"
            );
            return;
        }
    }
    // per_pbs_ms is only comparable at the same shard count and epoch
    // size — a 4-thread run against a 1-thread baseline would print a
    // meaningless "speedup" (or a spurious regression warning).
    let old_threads = json_number(old, "threads");
    let old_batch = json_number(old, "batch");
    if old_threads != Some(threads as f64) || old_batch != Some(batch as f64) {
        eprintln!(
            "bench_snapshot: baseline threads/batch ({:?}/{:?}) differ from measured \
             ({threads}/{batch}); comparison skipped",
            old_threads, old_batch
        );
        return;
    }
    let Some(old_ms) = json_number(old, "per_pbs_ms") else {
        eprintln!("bench_snapshot: baseline {baseline_path} has no per_pbs_ms; skipped");
        return;
    };
    let speedup = old_ms / per_pbs_ms;
    eprintln!(
        "bench_snapshot: baseline {old_ms:.3} ms/PBS -> {per_pbs_ms:.3} ms/PBS \
         ({speedup:.3}x vs {baseline_path})"
    );
    if per_pbs_ms > old_ms * 1.05 {
        eprintln!(
            "bench_snapshot: WARNING: PBS regressed more than 5% vs baseline \
             ({old_ms:.3} ms -> {per_pbs_ms:.3} ms). Warn-only; not failing."
        );
    }
}

/// One kernel's measured throughput plus its per-stage breakdown.
struct KernelMeasure {
    per_pbs_ms: f64,
    pbs_per_s: f64,
    stages: Vec<(&'static str, f64)>,
}

/// Measures one PBS kernel: epoch throughput via `run` (sharded over
/// `threads`), then a per-stage breakdown via `run_profiled` over the
/// probed production path. The breakdown is always measured on ONE
/// thread regardless of `threads` — the probe needs exclusive
/// `StageTimings` — so the emitted stage object carries its own
/// `"threads": 1` marker; the stage sum reconciles with `per_pbs_ms`
/// only when `threads` is 1 too.
fn measure_kernel(
    batch: usize,
    mut run: impl FnMut(usize),
    mut run_profiled: impl FnMut(&mut StageTimings),
    threads: usize,
) -> KernelMeasure {
    let per_epoch = time_per_call(|| run(threads));
    let mut timings = StageTimings::new();
    let mut profiled_epochs = 0u32;
    let t0 = Instant::now();
    while t0.elapsed() < BUDGET || profiled_epochs == 0 {
        run_profiled(&mut timings);
        profiled_epochs += 1;
    }
    let per_pbs_us = |stage: PbsStage| {
        timings.total_for(stage).as_secs_f64() * 1e6 / (profiled_epochs as f64 * batch as f64)
    };
    KernelMeasure {
        per_pbs_ms: per_epoch * 1e3 / batch as f64,
        pbs_per_s: batch as f64 / per_epoch,
        stages: vec![
            ("modswitch_us", per_pbs_us(PbsStage::ModSwitch)),
            ("rotate_us", per_pbs_us(PbsStage::Rotate)),
            ("decompose_us", per_pbs_us(PbsStage::Decompose)),
            ("forward_fft_us", per_pbs_us(PbsStage::Fft)),
            ("vma_us", per_pbs_us(PbsStage::VectorMultiply)),
            ("inverse_fft_us", per_pbs_us(PbsStage::IfftAccumulate)),
            ("sample_extract_us", per_pbs_us(PbsStage::SampleExtract)),
        ],
    }
}

fn main() {
    let mut fast = false;
    let mut threads = 1usize;
    let mut batch = 8usize;
    let mut kernel = String::from("both");
    let mut grouping = 3usize;
    let mut backend = StrixFftBackend::Auto;
    let mut out_path = String::from("BENCH_pbs.json");
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--threads" => {
                threads = args.next().and_then(|v| v.parse().ok()).expect("--threads <count>");
            }
            "--batch" => {
                batch = args.next().and_then(|v| v.parse().ok()).expect("--batch <jobs>");
            }
            "--kernel" => {
                kernel = args.next().expect("--kernel <both|classical|multi_bit>");
            }
            "--grouping" => {
                grouping = args.next().and_then(|v| v.parse().ok()).expect("--grouping <factor>");
            }
            "--backend" => {
                backend = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--backend <auto|portable|avx2|avx512>");
            }
            "--out" => out_path = args.next().expect("--out <path>"),
            "--baseline" => baseline = Some(args.next().expect("--baseline <file>")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let (classical_enabled, multi_bit_enabled) = match kernel.as_str() {
        "both" => (true, true),
        "classical" => (true, false),
        "multi_bit" => (false, true),
        other => {
            eprintln!("unknown --kernel value: {other} (expected both|classical|multi_bit)");
            std::process::exit(2);
        }
    };

    // Capture the baseline *now*, before anything writes `out_path` —
    // `--baseline BENCH_pbs.json --out BENCH_pbs.json` must compare
    // against the previous snapshot, not the one being produced.
    let baseline_contents = baseline.as_ref().map(|p| (p.clone(), std::fs::read_to_string(p)));

    let params = if fast { TfheParameters::testing_fast() } else { TfheParameters::set_ii() }
        .with_fft_backend(backend);
    if fast {
        batch = batch.min(4);
    }
    // The backend the PBS/FFT measurements below actually run on — the
    // snapshot records the resolved tier, never "auto".
    let resolved = match backend.resolve() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_snapshot: {e}");
            std::process::exit(2);
        }
    };
    let cpu_features = detected_cpu_features();
    eprintln!(
        "bench_snapshot: params={} batch={batch} threads={threads} kernel={kernel} \
         backend={resolved} cpu=[{}]",
        params.name,
        cpu_features.join(" "),
    );

    // FFT rows: the per-transform numbers future PRs diff against,
    // measured on the selected backend.
    let fft_sizes: &[usize] = if fast { &[256, 1024] } else { &[1024, 2048] };
    let fft_rows: Vec<FftRow> = fft_sizes.iter().map(|&n| measure_fft(n, backend)).collect();

    // Per-backend FFT rows: every backend the host supports, timed on
    // the same sizes through the batched SoA entry points (the only
    // transforms the SIMD dispatch covers), so the committed snapshot
    // shows the per-tier speedup (and any regression in a tier nobody
    // exercises by default). Values are per-transform µs at a batch of
    // BACKEND_FFT_BATCH.
    let backend_rows: Vec<(StrixFftBackend, FftRow)> =
        [StrixFftBackend::Portable, StrixFftBackend::Avx2, StrixFftBackend::Avx512]
            .into_iter()
            .filter(|b| b.is_available())
            .flat_map(|b| fft_sizes.iter().map(move |&n| (b, measure_fft_batched(n, b))))
            .collect();

    // PBS throughput on the timing-equivalent benchmark keys: one
    // key-major epoch of `batch` sign-LUT bootstraps per kernel,
    // repeated to fill the budget. Keys are generated only for the
    // kernels actually measured (the multi-bit key is 2^g/g times the
    // classical footprint: 2x at g = 2, 2.67x at g = 3).
    let bsk = classical_enabled.then(|| BootstrapKey::generate_for_benchmark(&params));
    let mbsk =
        multi_bit_enabled.then(|| MultiBitBootstrapKey::generate_for_benchmark(&params, grouping));
    let lut = Lut::sign(params.polynomial_size, encode_fraction(1, 3));
    // Pseudorandom masks (splitmix64): a trivial zero-mask ciphertext
    // would modulus-switch to all-zero rotations and skip every CMUX,
    // so the masks must be dense for the timing to be honest.
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    let cts: Vec<LweCiphertext> = (0..batch)
        .map(|_| LweCiphertext::from_raw((0..=params.lwe_dimension).map(|_| next()).collect()))
        .collect();
    let jobs: Vec<PbsJob<'_>> = cts.iter().map(|ct| PbsJob { ct, lut: &lut }).collect();
    let classical = bsk.as_ref().map(|bsk| {
        measure_kernel(
            batch,
            |t| {
                let out = bsk.bootstrap_batch_parallel(&jobs, t).unwrap();
                std::hint::black_box(&out);
            },
            |timings| {
                let out = bsk.bootstrap_batch_profiled(&jobs, timings).unwrap();
                std::hint::black_box(&out);
            },
            threads,
        )
    });
    let multi_bit = mbsk.as_ref().map(|mb| {
        measure_kernel(
            batch,
            |t| {
                let out = mb.bootstrap_batch_parallel(&jobs, t).unwrap();
                std::hint::black_box(&out);
            },
            |timings| {
                let out = mb.bootstrap_batch_profiled(&jobs, timings).unwrap();
                std::hint::black_box(&out);
            },
            threads,
        )
    });
    if let (Some(c), Some(m)) = (&classical, &multi_bit) {
        eprintln!(
            "bench_snapshot: multi-bit g={grouping}: {:.3} ms/PBS vs classical {:.3} ms/PBS \
             ({:.3}x)",
            m.per_pbs_ms,
            c.per_pbs_ms,
            c.per_pbs_ms / m.per_pbs_ms
        );
    }

    let unix_time = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0);
    let fft_json: Vec<String> = fft_rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"n\": {}, \"forward_us\": {:.3}, \"inverse_us\": {:.3}, \"pair_us\": {:.3} }}",
                r.n, r.forward_us, r.inverse_us, r.pair_us
            )
        })
        .collect();
    let backend_json: Vec<String> = backend_rows
        .iter()
        .map(|(b, r)| {
            format!(
                "    {{ \"backend\": \"{b}\", \"n\": {}, \"batch\": {BACKEND_FFT_BATCH}, \
                 \"forward_us\": {:.3}, \"inverse_us\": {:.3}, \"pair_us\": {:.3} }}",
                r.n, r.forward_us, r.inverse_us, r.pair_us
            )
        })
        .collect();
    let features_json =
        cpu_features.iter().map(|f| format!("\"{f}\"")).collect::<Vec<_>>().join(", ");
    let stage_obj = |m: &KernelMeasure| {
        std::iter::once("    \"threads\": 1".to_string())
            .chain(m.stages.iter().map(|(k, v)| format!("    \"{k}\": {v:.3}")))
            .collect::<Vec<_>>()
            .join(",\n")
    };
    // One `pbs*` block per measured kernel. The classical block keeps
    // its historical keys (`pbs` / `pbs_stages`) so older baselines
    // stay comparable; the multi-bit block sits alongside it.
    let mut kernel_blocks: Vec<String> = Vec::new();
    if let Some(m) = &classical {
        kernel_blocks.push(format!(
            "  \"pbs\": {{ \"batch\": {batch}, \"per_pbs_ms\": {:.3}, \"pbs_per_s\": {:.2} }}",
            m.per_pbs_ms, m.pbs_per_s
        ));
        kernel_blocks.push(format!("  \"pbs_stages\": {{\n{}\n  }}", stage_obj(m)));
    }
    if let Some(m) = &multi_bit {
        kernel_blocks.push(format!(
            "  \"pbs_multi_bit\": {{ \"grouping_factor\": {grouping}, \"batch\": {batch}, \
             \"per_pbs_ms\": {:.3}, \"pbs_per_s\": {:.2} }}",
            m.per_pbs_ms, m.pbs_per_s
        ));
        kernel_blocks.push(format!("  \"pbs_multi_bit_stages\": {{\n{}\n  }}", stage_obj(m)));
    }
    let json = format!(
        "{{\n\
         \x20 \"schema\": \"strix-bench-snapshot-v3\",\n\
         \x20 \"unix_time\": {unix_time},\n\
         \x20 \"git_commit\": \"{commit}\",\n\
         \x20 \"kernel_backend\": \"{resolved}\",\n\
         \x20 \"cpu_features\": [{features_json}],\n\
         \x20 \"params\": {{\n\
         \x20   \"name\": \"{name}\",\n\
         \x20   \"lwe_dimension\": {n_lwe},\n\
         \x20   \"glwe_dimension\": {k},\n\
         \x20   \"polynomial_size\": {poly},\n\
         \x20   \"pbs_base_log\": {base},\n\
         \x20   \"pbs_level\": {level},\n\
         \x20   \"ks_base_log\": {ks_base},\n\
         \x20   \"ks_level\": {ks_level}\n\
         \x20 }},\n\
         \x20 \"threads\": {threads},\n\
         {kernels},\n\
         \x20 \"fft\": [\n{fft}\n  ],\n\
         \x20 \"fft_backends\": [\n{fft_backends}\n  ]\n\
         }}\n",
        commit = git_commit(),
        name = params.name,
        n_lwe = params.lwe_dimension,
        k = params.glwe_dimension,
        poly = params.polynomial_size,
        base = params.pbs_base_log,
        level = params.pbs_level,
        ks_base = params.ks_base_log,
        ks_level = params.ks_level,
        kernels = kernel_blocks.join(",\n"),
        fft = fft_json.join(",\n"),
        fft_backends = backend_json.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write snapshot JSON");
    println!("{json}");
    eprintln!("bench_snapshot: wrote {out_path}");
    match baseline_contents {
        Some((path, Ok(old))) => {
            if let Some(m) = &classical {
                compare_against_baseline(
                    &old,
                    &path,
                    &params.name,
                    threads,
                    batch,
                    resolved.label(),
                    m.per_pbs_ms,
                );
            } else {
                eprintln!(
                    "bench_snapshot: classical kernel not measured; baseline comparison skipped"
                );
            }
        }
        Some((path, Err(_))) => {
            eprintln!("bench_snapshot: baseline {path} unreadable; comparison skipped");
        }
        None => {}
    }
}
