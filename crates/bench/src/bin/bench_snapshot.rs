//! Perf-trajectory snapshot: a fixed PBS + FFT workload whose numbers
//! are written to `BENCH_pbs.json` at the repo root, so successive PRs
//! have a committed baseline to compare against.
//!
//! Run from the workspace root (paths are relative to the cwd):
//!
//! ```text
//! cargo run --release -p strix-bench --bin bench_snapshot
//! cargo run --release -p strix-bench --bin bench_snapshot -- --fast --out /tmp/s.json
//! ```
//!
//! `--fast` switches to the tiny insecure test parameters (CI smoke);
//! the default is the paper's 128-bit set II, measured with the
//! timing-equivalent benchmark bootstrapping key (same arithmetic
//! shape as a real key, instant keygen). `--threads T` sets the
//! intra-epoch shard count fed to `bootstrap_batch_parallel`.

use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use strix_fft::{Complex64, NegacyclicFft};
use strix_tfhe::bootstrap::{BootstrapKey, Lut, PbsJob};
use strix_tfhe::lwe::LweCiphertext;
use strix_tfhe::torus::encode_fraction;
use strix_tfhe::TfheParameters;

/// Wall-clock budget per measured quantity.
const BUDGET: Duration = Duration::from_millis(300);

/// Times `f` adaptively: one calibration call, then enough iterations
/// to fill the budget. Returns mean seconds per call.
fn time_per_call<F: FnMut()>(mut f: F) -> f64 {
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().max(Duration::from_nanos(50));
    let iters = (BUDGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

struct FftRow {
    n: usize,
    forward_us: f64,
    inverse_us: f64,
    pair_us: f64,
}

fn measure_fft(n: usize) -> FftRow {
    let fft = NegacyclicFft::new(n).unwrap();
    let poly: Vec<i64> = (0..n as i64).map(|i| (i * 31 % 1024) - 512).collect();
    let mut spec = vec![Complex64::ZERO; n / 2];
    let mut time = vec![0.0f64; n];

    let forward = time_per_call(|| fft.forward_i64(&poly, &mut spec).unwrap());
    fft.forward_i64(&poly, &mut spec).unwrap();
    let inverse = time_per_call(|| {
        // The inverse consumes the spectrum as scratch; refresh it so
        // every iteration transforms honest data.
        let mut s = spec.clone();
        fft.backward_f64(&mut s, &mut time).unwrap();
    });
    let clone_cost = time_per_call(|| {
        let s = spec.clone();
        std::hint::black_box(&s);
    });
    let pair = time_per_call(|| {
        fft.forward_i64(&poly, &mut spec).unwrap();
        fft.backward_f64(&mut spec, &mut time).unwrap();
    });
    FftRow {
        n,
        forward_us: forward * 1e6,
        inverse_us: (inverse - clone_cost).max(0.0) * 1e6,
        pair_us: pair * 1e6,
    }
}

fn main() {
    let mut fast = false;
    let mut threads = 1usize;
    let mut batch = 8usize;
    let mut out_path = String::from("BENCH_pbs.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--threads" => {
                threads = args.next().and_then(|v| v.parse().ok()).expect("--threads <count>");
            }
            "--batch" => {
                batch = args.next().and_then(|v| v.parse().ok()).expect("--batch <jobs>");
            }
            "--out" => out_path = args.next().expect("--out <path>"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let params = if fast { TfheParameters::testing_fast() } else { TfheParameters::set_ii() };
    if fast {
        batch = batch.min(4);
    }
    eprintln!("bench_snapshot: params={} batch={batch} threads={threads}", params.name);

    // FFT rows: the per-transform numbers future PRs diff against.
    let fft_sizes: &[usize] = if fast { &[256, 1024] } else { &[1024, 2048] };
    let fft_rows: Vec<FftRow> = fft_sizes.iter().map(|&n| measure_fft(n)).collect();

    // PBS throughput on the timing-equivalent benchmark key: one
    // key-major epoch of `batch` sign-LUT bootstraps, repeated to fill
    // the budget.
    let bsk = BootstrapKey::generate_for_benchmark(&params);
    let lut = Lut::sign(params.polynomial_size, encode_fraction(1, 3));
    // Pseudorandom masks (splitmix64): a trivial zero-mask ciphertext
    // would modulus-switch to all-zero rotations and skip every CMUX,
    // so the masks must be dense for the timing to be honest.
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    let cts: Vec<LweCiphertext> = (0..batch)
        .map(|_| LweCiphertext::from_raw((0..=params.lwe_dimension).map(|_| next()).collect()))
        .collect();
    let jobs: Vec<PbsJob<'_>> = cts.iter().map(|ct| PbsJob { ct, lut: &lut }).collect();
    let per_epoch = time_per_call(|| {
        let out = bsk.bootstrap_batch_parallel(&jobs, threads).unwrap();
        std::hint::black_box(&out);
    });
    let pbs_per_s = batch as f64 / per_epoch;
    let per_pbs_ms = per_epoch * 1e3 / batch as f64;

    let unix_time = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0);
    let fft_json: Vec<String> = fft_rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"n\": {}, \"forward_us\": {:.3}, \"inverse_us\": {:.3}, \"pair_us\": {:.3} }}",
                r.n, r.forward_us, r.inverse_us, r.pair_us
            )
        })
        .collect();
    let json = format!(
        "{{\n\
         \x20 \"schema\": \"strix-bench-snapshot-v1\",\n\
         \x20 \"unix_time\": {unix_time},\n\
         \x20 \"params\": {{\n\
         \x20   \"name\": \"{name}\",\n\
         \x20   \"lwe_dimension\": {n_lwe},\n\
         \x20   \"glwe_dimension\": {k},\n\
         \x20   \"polynomial_size\": {poly},\n\
         \x20   \"pbs_base_log\": {base},\n\
         \x20   \"pbs_level\": {level},\n\
         \x20   \"ks_base_log\": {ks_base},\n\
         \x20   \"ks_level\": {ks_level}\n\
         \x20 }},\n\
         \x20 \"threads\": {threads},\n\
         \x20 \"pbs\": {{ \"batch\": {batch}, \"per_pbs_ms\": {per_pbs_ms:.3}, \"pbs_per_s\": {pbs_per_s:.2} }},\n\
         \x20 \"fft\": [\n{fft}\n  ]\n\
         }}\n",
        name = params.name,
        n_lwe = params.lwe_dimension,
        k = params.glwe_dimension,
        poly = params.polynomial_size,
        base = params.pbs_base_log,
        level = params.pbs_level,
        ks_base = params.ks_base_log,
        ks_level = params.ks_level,
        fft = fft_json.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write snapshot JSON");
    println!("{json}");
    eprintln!("bench_snapshot: wrote {out_path}");
}
