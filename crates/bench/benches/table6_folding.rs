//! Table VI — FFT folding-scheme ablation at parameter set I.
//!
//! Paper: latency 0.27 → 0.16 ms (1.68×), throughput 37,472 → 74,696
//! PBS/s (1.99×), FFT unit area 3.13 → 1.81 mm² (1.73×), core area
//! 13.87 → 9.38 mm² (1.48×).

use strix_bench::{banner, markdown_table, ratio_cell};
use strix_core::area::AreaModel;
use strix_core::{StrixConfig, StrixSimulator};
use strix_tfhe::TfheParameters;

fn main() {
    println!("{}", banner("Table VI: FFT folding optimisation effects (set I)"));

    let params = TfheParameters::set_i();
    let folded_cfg = StrixConfig::paper_default();
    let plain_cfg = StrixConfig::paper_non_folded();

    let folded = StrixSimulator::new(folded_cfg.clone(), params.clone()).unwrap();
    let plain = StrixSimulator::new(plain_cfg.clone(), params).unwrap();
    let folded_r = folded.pbs_report(1 << 13);
    let plain_r = plain.pbs_report(1 << 13);
    let folded_a = AreaModel::new(&folded_cfg);
    let plain_a = AreaModel::new(&plain_cfg);

    // One FFT unit's area (the Table VI metric is per unit).
    let unit_folded = folded_a.fft_units_area_mm2() / 4.0;
    let unit_plain = plain_a.fft_units_area_mm2() / 4.0;

    let rows = vec![
        vec![
            "Latency (ms)".into(),
            format!("{:.2}", plain_r.latency_s * 1e3),
            format!("{:.2}", folded_r.latency_s * 1e3),
            ratio_cell(plain_r.latency_s, folded_r.latency_s),
            "1.68x".into(),
        ],
        vec![
            "Throughput (PBS/s)".into(),
            format!("{:.0}", plain_r.throughput_pbs_per_s),
            format!("{:.0}", folded_r.throughput_pbs_per_s),
            ratio_cell(folded_r.throughput_pbs_per_s, plain_r.throughput_pbs_per_s),
            "1.99x".into(),
        ],
        vec![
            "FFT unit area (mm²)".into(),
            format!("{unit_plain:.2}"),
            format!("{unit_folded:.2}"),
            ratio_cell(unit_plain, unit_folded),
            "1.73x".into(),
        ],
        vec![
            "Total core area (mm²)".into(),
            format!("{:.2}", plain_a.core_area_mm2()),
            format!("{:.2}", folded_a.core_area_mm2()),
            ratio_cell(plain_a.core_area_mm2(), folded_a.core_area_mm2()),
            "1.48x".into(),
        ],
    ];
    println!(
        "{}",
        markdown_table(
            &["metric", "no fold", "with fold", "improvement", "paper improvement"],
            &rows
        )
    );

    let thr_gain = folded_r.throughput_pbs_per_s / plain_r.throughput_pbs_per_s;
    assert!((1.9..2.1).contains(&thr_gain), "throughput gain {thr_gain}");
    let area_gain = unit_plain / unit_folded;
    assert!((1.6..1.9).contains(&area_gain), "area gain {area_gain}");
    println!("shape checks passed: ~2x throughput, ~1.7x FFT-unit area from folding");
}
