//! Criterion micro-benchmarks of the FFT substrate: forward/inverse
//! complex transforms, the folded negacyclic transform, and negacyclic
//! multiplication FFT-vs-schoolbook.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use strix_fft::{reference, Complex64, FftPlan, NegacyclicFft};

fn bench_complex_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("complex_fft");
    for log_n in [9u32, 10, 13] {
        let n = 1usize << log_n;
        let plan = FftPlan::new(n).unwrap();
        let data: Vec<Complex64> =
            (0..n).map(|i| Complex64::new(i as f64, (i * 7) as f64)).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter(|| {
                let mut d = data.clone();
                plan.forward(&mut d).unwrap();
                d
            })
        });
    }
    group.finish();
}

fn bench_negacyclic_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("negacyclic_transform");
    for n in [1024usize, 2048, 16384] {
        let fft = NegacyclicFft::new(n).unwrap();
        let poly: Vec<i64> = (0..n as i64).map(|i| (i * 31 % 1024) - 512).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("forward_i64", n), &n, |b, _| {
            let mut spec = vec![Complex64::ZERO; n / 2];
            b.iter(|| fft.forward_i64(&poly, &mut spec).unwrap())
        });
    }
    group.finish();
}

fn bench_negacyclic_mul(c: &mut Criterion) {
    let mut group = c.benchmark_group("negacyclic_mul");
    group.sample_size(20);
    let n = 1024usize;
    let a: Vec<i64> = (0..n as i64).map(|i| (i % 64) - 32).collect();
    let b_poly: Vec<i64> = (0..n as i64).map(|i| (i % 32) - 16).collect();
    let fft = NegacyclicFft::new(n).unwrap();
    group.bench_function("fft_1024", |b| {
        let mut out = vec![0i64; n];
        b.iter(|| fft.negacyclic_mul_i64(&a, &b_poly, &mut out).unwrap())
    });
    group.bench_function("schoolbook_1024", |b| b.iter(|| reference::negacyclic_mul(&a, &b_poly)));
    group.finish();
}

criterion_group!(benches, bench_complex_fft, bench_negacyclic_transform, bench_negacyclic_mul);
criterion_main!(benches);
