//! Figure 7 — Zama Deep-NN (NN-20/50/100) execution time: CPU vs GPU
//! vs Strix across polynomial sizes 1024/2048/4096.
//!
//! CPU: one PBS+KS measured on this host with `strix-tfhe`, multiplied
//! by the model's PBS count (the paper's CPU, a Xeon running Concrete,
//! is sequential in exactly the same way). GPU: the NuFHE fragmentation
//! model scaled to each parameter set. Strix: the cycle-level model
//! executing the layer-by-layer workload graph.

use strix_baselines::{cpu, GpuModel};
use strix_bench::{banner, markdown_table};
use strix_core::{StrixConfig, StrixSimulator, WorkloadNode};
use strix_workloads::DeepNn;

/// The paper's Fig. 7 CPU numbers imply ~0.5 ms/PBS against Table V's
/// 14 ms single-thread latency — consistent with PBS-parallel execution
/// across a 28-core Xeon Platinum. We report both single-thread and a
/// 28-way ideally-parallel column.
const XEON_CORES: f64 = 28.0;

fn main() {
    println!("{}", banner("Figure 7: Zama Deep-NN execution time (ms)"));

    let mut rows = Vec::new();
    let mut strix_vs_cpu = Vec::new();
    let mut strix_vs_gpu = Vec::new();
    for depth in [20usize, 50, 100] {
        for poly in [1024usize, 2048, 4096] {
            let nn = DeepNn::new(depth, poly);
            let params = nn.params();

            // CPU: measured per-PBS cost × PBS count.
            let m = cpu::measure_pbs_benchmark_key(&params, 1);
            let cpu_s = (m.pbs_s + m.keyswitch_s) * nn.total_pbs() as f64;

            // GPU: per-layer device batches through the NuFHE model.
            let gpu = GpuModel::titan_rtx_for(&params);
            let gpu_s: f64 = nn
                .workload()
                .nodes()
                .iter()
                .map(|n| match n {
                    WorkloadNode::Pbs { lwes, .. } => gpu.device_batched_time_s(*lwes),
                    WorkloadNode::Linear { .. } => 0.0,
                })
                .sum();

            // Strix: the simulator over the same graph.
            let sim = StrixSimulator::new(StrixConfig::paper_default(), params).unwrap();
            let strix_s = sim.run_graph(&nn.workload()).total_time_s;

            let cpu_mt_s = cpu_s / XEON_CORES;
            strix_vs_cpu.push(cpu_mt_s / strix_s);
            strix_vs_gpu.push(gpu_s / strix_s);
            rows.push(vec![
                format!("NN-{depth}"),
                poly.to_string(),
                nn.total_pbs().to_string(),
                format!("{:.0}", cpu_s * 1e3),
                format!("{:.0}", cpu_mt_s * 1e3),
                format!("{:.0}", gpu_s * 1e3),
                format!("{:.1}", strix_s * 1e3),
                format!("{:.0}x", cpu_mt_s / strix_s),
                format!("{:.0}x", gpu_s / strix_s),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "model",
                "N",
                "PBS",
                "CPU-1t ms",
                "CPU-28t ms",
                "GPU ms",
                "Strix ms",
                "vs CPU-28t",
                "vs GPU"
            ],
            &rows
        )
    );

    // Paper: 33–38× vs CPU and 8–17× vs GPU (their hardware); on this
    // host the CPU ratio shifts with machine speed, so assert ordering
    // and order-of-magnitude only.
    assert!(strix_vs_cpu.iter().all(|&s| s > 5.0), "Strix must clearly beat the CPU");
    assert!(strix_vs_gpu.iter().all(|&s| s > 3.0), "Strix must beat the GPU");
    println!(
        "speedups: vs 28-thread CPU {:.0}x..{:.0}x, vs GPU {:.1}x..{:.1}x \
         (paper: 33-38x CPU, 8-17x GPU)",
        strix_vs_cpu.iter().cloned().fold(f64::INFINITY, f64::min),
        strix_vs_cpu.iter().cloned().fold(0.0, f64::max),
        strix_vs_gpu.iter().cloned().fold(f64::INFINITY, f64::min),
        strix_vs_gpu.iter().cloned().fold(0.0, f64::max),
    );
}
