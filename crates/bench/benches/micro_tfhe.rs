//! Criterion micro-benchmarks of the TFHE kernels: gadget
//! decomposition, external product, blind rotation, keyswitching, and
//! a full bootstrapped gate — the CPU-side cost centres of Fig. 1.

use criterion::{criterion_group, criterion_main, Criterion};
use strix_tfhe::bootstrap::{encode_bool, BootstrapKey, Lut};
use strix_tfhe::decompose::DecompositionParams;
use strix_tfhe::lwe::LweCiphertext;
use strix_tfhe::poly::TorusPolynomial;
use strix_tfhe::prelude::*;
use strix_tfhe::torus::encode_fraction;

fn bench_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomposition");
    let decomp = DecompositionParams::new(10, 2);
    let poly = TorusPolynomial::from_coeffs(
        (0..1024u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect(),
    );
    group.bench_function("polynomial_1024_l2", |b| b.iter(|| decomp.decompose_polynomial(&poly)));
    group.finish();
}

fn bench_pbs_and_gate(c: &mut Criterion) {
    let mut group = c.benchmark_group("pbs");
    group.sample_size(10);

    // Full PBS at the paper's set I (the Table V CPU measurement).
    let params = TfheParameters::set_i();
    let bsk = BootstrapKey::generate_for_benchmark(&params);
    let lut = Lut::sign(params.polynomial_size, encode_fraction(1, 3));
    let mut raw: Vec<u64> = (0..params.lwe_dimension as u64)
        .map(|i| i.wrapping_mul(0xD1B5_4A32_D192_ED03) | 1)
        .collect();
    raw.push(encode_bool(true));
    let ct = LweCiphertext::from_raw(raw);
    group.bench_function("bootstrap_set_i", |b| b.iter(|| bsk.bootstrap(&ct, &lut).unwrap()));

    // Gate + keyswitch at the fast testing set (full real-key path).
    let (mut client, server) = generate_keys(&TfheParameters::testing_fast(), 5);
    let x = client.encrypt_bool(true);
    let y = client.encrypt_bool(false);
    group.bench_function("nand_gate_testing_fast", |b| b.iter(|| server.nand(&x, &y).unwrap()));

    let boot = server
        .bootstrap_key()
        .bootstrap(x.as_lwe(), &Lut::sign(256, encode_fraction(1, 3)))
        .unwrap();
    group.bench_function("keyswitch_testing_fast", |b| {
        b.iter(|| server.keyswitch_key().keyswitch(&boot).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_decomposition, bench_pbs_and_gate);
criterion_main!(benches);
