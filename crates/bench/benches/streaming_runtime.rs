//! Streaming-runtime throughput bench: saturates `strix-runtime` with
//! a backlog workload at the fast test parameters and prints the
//! measured software report next to the simulator's accelerator model
//! of the same two-level batching policy.
//!
//! ```sh
//! cargo bench -p strix-bench --bench streaming_runtime
//! ```

use std::sync::Arc;
use std::time::Duration;

use strix_bench::{banner, markdown_table, runtime_vs_simulator_rows, RUNTIME_COMPARISON_HEADER};
use strix_core::{BatchGeometry, StrixConfig, StrixSimulator};
use strix_runtime::{ArrivalProcess, OpenLoopTrafficGen, RequestOp, Runtime, RuntimeConfig};
use strix_tfhe::bootstrap::Lut;
use strix_tfhe::prelude::*;

const CLIENTS: u64 = 8;
const PER_CLIENT: usize = 64;
const BITS: u32 = 3;

fn main() {
    println!("{}", banner("Streaming runtime vs simulated Strix"));

    let params = TfheParameters::testing_fast();
    let (client_key, server_key) = generate_keys(&params, 0xBE7C);
    let geometry = BatchGeometry::explicit(4, 8);
    // Shard each epoch across the cores, divided between the two
    // workers so workers x threads never oversubscribes the host
    // (capped at 4 threads per worker either way).
    const WORKERS: usize = 2;
    let threads_per_worker =
        std::thread::available_parallelism().map_or(1, |p| (p.get() / WORKERS).clamp(1, 4));
    let runtime = Runtime::start_tfhe(
        RuntimeConfig::new(geometry)
            .with_max_delay(Duration::from_millis(50))
            .with_workers(WORKERS)
            .with_threads_per_worker(threads_per_worker),
        Arc::new(server_key),
    );
    let lut =
        Arc::new(Lut::from_function(params.polynomial_size, BITS, |m| (7 * m + 1) % 8).unwrap());

    // Backlog arrivals: every client submits as fast as the ingress
    // accepts, so epochs flush full and the measurement is the
    // software stack's saturated PBS/s.
    let traffic = OpenLoopTrafficGen::new(ArrivalProcess::Backlog, 1);
    std::thread::scope(|scope| {
        for client_idx in 0..CLIENTS {
            let mut handle = runtime.client();
            let mut key = client_key.clone();
            let lut = Arc::clone(&lut);
            let delays = traffic.inter_arrivals(client_idx, PER_CLIENT);
            scope.spawn(move || {
                for (i, delay) in delays.iter().enumerate() {
                    std::thread::sleep(*delay);
                    let ct = key.encrypt_shortint((i as u64) % 8, BITS).unwrap().as_lwe().clone();
                    handle.submit(ct, RequestOp::Lut(Arc::clone(&lut))).unwrap();
                }
                for _ in 0..PER_CLIENT {
                    handle.recv().expect("response").result.expect("op succeeds");
                }
            });
        }
    });
    let measured = runtime.shutdown();

    // Simulate the *same* geometry the runtime just ran (4 cores,
    // core batch pinned to 8), so the two rows differ only in
    // software-vs-modelled-hardware, not in batch shape.
    let sim_config = StrixConfig { tvlp: geometry.tvlp, ..StrixConfig::paper_default() }
        .with_core_batch(geometry.core_batch);
    let sim = StrixSimulator::new(sim_config, params.clone()).expect("valid config");
    assert_eq!(sim.batch_geometry(), geometry, "rows must share one batch shape");
    let simulated = sim.pbs_report(measured.requests_completed.max(1));

    println!(
        "workload: {} clients x {} backlog requests at {} (epoch {})",
        CLIENTS,
        PER_CLIENT,
        params.name,
        geometry.epoch_size()
    );
    println!();
    println!(
        "{}",
        markdown_table(
            &RUNTIME_COMPARISON_HEADER,
            &runtime_vs_simulator_rows(&measured, &simulated)
        )
    );
    println!("{}", measured.summary());
}
