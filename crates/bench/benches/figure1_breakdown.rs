//! Figure 1 — workload breakdown for a TFHE gate operation on CPU.
//!
//! Runs instrumented NAND gates with this repository's TFHE
//! implementation and prints the three panels of the paper's figure:
//! gate-level (PBS / KS / other), PBS-level (blind rotation share) and
//! per-stage shares within one blind-rotation iteration.
//!
//! Paper reference values (set I on a Xeon): PBS ≈ 65%, KS ≈ 30%,
//! other ≈ 5%; blind rotation ≈ 98% of PBS.

use strix_baselines::breakdown;
use strix_bench::{banner, markdown_table};
use strix_tfhe::TfheParameters;

fn main() {
    println!("{}", banner("Figure 1: TFHE gate workload breakdown (measured on this host)"));

    let params = TfheParameters::set_i();
    let gates = 8;
    println!("parameter set {}, {} instrumented NAND gates\n", params.name, gates);
    let b = breakdown::measure(&params, gates, 11);

    let rows = vec![
        vec![
            "measured".to_string(),
            format!("{:.1}%", b.pbs_fraction * 100.0),
            format!("{:.1}%", b.keyswitch_fraction * 100.0),
            format!("{:.1}%", b.other_fraction * 100.0),
        ],
        vec!["paper (Xeon)".to_string(), "≈65%".into(), "≈30%".into(), "≈5%".into()],
    ];
    println!("{}", markdown_table(&["gate time", "PBS", "KS", "other"], &rows));

    println!(
        "blind rotation share of PBS: measured {:.1}% (paper ≈98%)\n",
        b.blind_rotation_of_pbs * 100.0
    );

    let stage_rows: Vec<Vec<String>> = b
        .iteration_stages
        .iter()
        .map(|(label, f)| vec![label.clone(), format!("{:.1}%", f * 100.0)])
        .collect();
    println!("{}", markdown_table(&["BR iteration stage", "share of iteration"], &stage_rows));

    // Machine-checkable summary for EXPERIMENTS.md.
    assert!(b.pbs_fraction > 0.5, "PBS must dominate the gate");
    assert!(b.blind_rotation_of_pbs > 0.9, "blind rotation must dominate PBS");
    println!("shape checks passed: PBS-dominant gate, blind-rotation-dominant PBS");
}
