//! Ablations beyond the paper's tables, exercising the design choices
//! §IV-A calls out: PLP/CoLP replication, core-level batch size,
//! HBM channel allocation, and local-scratchpad capacity.

use strix_bench::{banner, markdown_table};
use strix_core::{StrixConfig, StrixSimulator};
use strix_tfhe::TfheParameters;

fn report(cfg: StrixConfig, params: TfheParameters) -> (f64, f64) {
    let sim = StrixSimulator::new(cfg, params).unwrap();
    let r = sim.pbs_report(1 << 13);
    (r.throughput_pbs_per_s, r.latency_s * 1e3)
}

fn main() {
    println!("{}", banner("Ablation A: PLP / CoLP replication (set I)"));
    let mut rows = Vec::new();
    for (plp, colp) in [(1, 1), (2, 1), (1, 2), (2, 2), (4, 4)] {
        let cfg = StrixConfig { plp, colp, ..StrixConfig::paper_default() };
        let (thr, lat) = report(cfg, TfheParameters::set_i());
        rows.push(vec![
            plp.to_string(),
            colp.to_string(),
            format!("{thr:.0}"),
            format!("{lat:.2}"),
        ]);
    }
    println!("{}", markdown_table(&["PLP", "CoLP", "thr (PBS/s)", "lat (ms)"], &rows));

    println!("{}", banner("Ablation B: core-level batch size (set IV, 150 GB/s HBM)"));
    // At set IV with a half-bandwidth stack the per-iteration key fetch
    // outweighs one LWE's compute: without core-level batching the
    // machine is memory-bound, and each extra LWE per core reuses the
    // same fetched GGSW — the §III motivation made quantitative.
    let mut rows = Vec::new();
    let mut last_thr = 0.0;
    for batch in [1usize, 2, 3, 4] {
        let mut cfg = StrixConfig::paper_default().with_core_batch(batch);
        cfg.hbm.total_bandwidth_gbps = 150.0;
        let sim = StrixSimulator::new(cfg, TfheParameters::set_iv()).unwrap();
        let r = sim.pbs_report(1 << 12);
        rows.push(vec![
            batch.to_string(),
            format!("{:.0}", r.throughput_pbs_per_s),
            format!("{}", r.iteration_cycles),
            if r.memory_bound { "memory" } else { "compute" }.into(),
        ]);
        assert!(r.throughput_pbs_per_s >= last_thr * 0.999, "throughput must not drop with batch");
        last_thr = r.throughput_pbs_per_s;
    }
    println!("{}", markdown_table(&["LWEs/core", "thr (PBS/s)", "iter cycles", "bound"], &rows));
    println!("core-level batching amortises the key stream: the motivation of §III\n");

    println!("{}", banner("Ablation C: HBM bandwidth (set IV, design point)"));
    let mut rows = Vec::new();
    for bw in [75.0, 150.0, 300.0, 600.0] {
        let mut cfg = StrixConfig::paper_default();
        cfg.hbm.total_bandwidth_gbps = bw;
        let (thr, lat) = report(cfg, TfheParameters::set_iv());
        rows.push(vec![format!("{bw:.0}"), format!("{thr:.0}"), format!("{lat:.2}")]);
    }
    println!("{}", markdown_table(&["HBM GB/s", "thr (PBS/s)", "lat (ms)"], &rows));

    println!("{}", banner("Ablation D: local scratchpad capacity (set IV)"));
    let mut rows = Vec::new();
    for kib in [256usize, 512, 640, 1280, 2560] {
        let mut cfg = StrixConfig::paper_default();
        cfg.local_scratchpad_bytes = kib * 1024;
        let sim = StrixSimulator::new(cfg, TfheParameters::set_iv()).unwrap();
        let r = sim.pbs_report(1 << 12);
        rows.push(vec![
            format!("{kib} KiB"),
            r.core_batch.to_string(),
            format!("{:.0}", r.throughput_pbs_per_s),
            if r.memory_bound { "memory" } else { "compute" }.into(),
        ]);
    }
    println!("{}", markdown_table(&["local SP", "LWEs/core", "thr (PBS/s)", "bound"], &rows));
    println!("bigger local scratchpads buy key reuse exactly as §IV-C describes\n");

    println!("{}", banner("Ablation E: bootstrapping-key unrolling vs streaming batching"));
    // Matcha's trick (paper §VII, ref [51]): handle two secret bits per
    // blind-rotation iteration with three GGSWs — ⌈n/2⌉ iterations,
    // 1.5× key bytes, 3 external products per iteration. On the Strix
    // streaming pipeline each iteration then occupies 3×II, so:
    let mut rows = Vec::new();
    for params in [TfheParameters::set_i(), TfheParameters::set_iv()] {
        let sim = StrixSimulator::new(StrixConfig::paper_default(), params.clone()).unwrap();
        let ii = sim.pbs_cluster().initiation_interval_cycles();
        let n = params.lwe_dimension as u64;
        let standard_lat = n * ii;
        let unrolled_lat = n.div_ceil(2) * 3 * ii;
        let standard_key = params.bootstrap_key_bytes();
        let unrolled_key = standard_key * 3 / 2;
        rows.push(vec![
            params.name.clone(),
            format!("{standard_lat} cyc / {unrolled_lat} cyc"),
            format!("{:.2}x", unrolled_lat as f64 / standard_lat as f64),
            format!(
                "{:.0} MiB / {:.0} MiB",
                standard_key as f64 / (1 << 20) as f64,
                unrolled_key as f64 / (1 << 20) as f64
            ),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["set", "BR latency std/unrolled", "latency ratio", "key bytes std/unrolled"],
            &rows
        )
    );
    println!(
        "unrolling *hurts* a fully-streamed pipeline (1.5x latency, 1.5x key \
         traffic): quantitative support for the paper's §VII position that \
         two-level batching, not unrolling, is the right lever for Strix. \
         The real cryptographic implementation is strix_tfhe::unrolled.\n"
    );

    println!("{}", banner("Ablation F: bsk multicast bus width (set I)"));
    // One GGSW per initiation interval needs (k+1)·16·CLP·PLP = 256 B
    // per cycle. A narrower bus stretches the single-LWE iteration (it
    // cannot be amortised) but leaves batched throughput intact — the
    // §IV-C amortisation applies to the NoC exactly as to HBM.
    let mut rows = Vec::new();
    for bits in [512usize, 1024, 2048, 4096] {
        let mut cfg = StrixConfig::paper_default();
        cfg.noc.bsk_bus_bits = bits;
        let sim = StrixSimulator::new(cfg, TfheParameters::set_i()).unwrap();
        let r = sim.pbs_report(1 << 13);
        rows.push(vec![
            bits.to_string(),
            format!("{:.2}", r.latency_s * 1e3),
            format!("{:.0}", r.throughput_pbs_per_s),
        ]);
    }
    println!("{}", markdown_table(&["bus bits", "latency (ms)", "thr (PBS/s)"], &rows));
    println!(
        "the 512-bit width stated in §VI-A cannot sustain the paper's 0.16 ms \
         single-PBS latency; 2048 bits (matching the HBM burst rate) is the \
         break-even width our model defaults to"
    );
}
