//! Figure 2 — blind-rotation fragmentation of the GPU baseline.
//!
//! Left panel: device-level batching staircase (normalised execution
//! time vs number of LWEs, plateau width = 72 SMs). Right panel: GPU
//! core-level batching (linear in LWEs per core — no amortisation).

use strix_baselines::GpuModel;
use strix_bench::{banner, markdown_table};

fn main() {
    let gpu = GpuModel::titan_rtx_set_i();

    println!("{}", banner("Figure 2 (left): GPU device-level batching"));
    let mut rows = Vec::new();
    for lwes in [1usize, 36, 72, 73, 108, 144, 145, 180, 216, 217, 252, 288] {
        let norm = gpu.device_batched_time_s(lwes) / gpu.batch_time_s;
        rows.push(vec![
            lwes.to_string(),
            gpu.fragments(lwes).to_string(),
            format!("{norm:.0}"),
            "#".repeat((norm * 8.0) as usize),
        ]);
    }
    println!("{}", markdown_table(&["LWEs", "BR fragments", "norm. time", ""], &rows));

    println!("{}", banner("Figure 2 (right): GPU core-level batching"));
    let mut rows = Vec::new();
    for per_core in 1..=4usize {
        let norm = gpu.core_batched_time_s(per_core) / gpu.batch_time_s;
        rows.push(vec![
            per_core.to_string(),
            format!("{norm:.0}"),
            "#".repeat((norm * 8.0) as usize),
        ]);
    }
    println!("{}", markdown_table(&["LWEs per core", "norm. time", ""], &rows));

    // The two structural facts of §III.
    assert_eq!(
        gpu.device_batched_time_s(72),
        gpu.device_batched_time_s(1),
        "time must be flat within one device batch"
    );
    assert_eq!(
        gpu.device_batched_time_s(73),
        2.0 * gpu.device_batched_time_s(72),
        "crossing the SM count must double execution time"
    );
    assert_eq!(
        gpu.core_batched_time_s(3),
        3.0 * gpu.core_batched_time_s(1),
        "GPU core-level batching must scale linearly (no benefit)"
    );
    println!("shape checks passed: staircase plateaus at 72, core-level batching linear");
}
