//! Session/dataflow bench: epoch occupancy and PBS/s as concurrent
//! circuit clients stream multi-stage programs through the runtime.
//!
//! One client executing a circuit DAG alone keeps only its dependency
//! frontier in flight, so epochs flush undersized at the deadline —
//! the fragmentation cost of the paper's Fig. 2. This harness sweeps
//! the concurrent-client count over the same per-client circuit mix
//! (a 4-bit ripple-carry adder plus a 4-bit equality comparator
//! compiled to dataflow programs) and prints how interleaved sessions
//! recover full `TvLP × core_batch` epochs.
//!
//! ```sh
//! cargo bench -p strix-bench --bench session_dataflow
//! ```

use std::sync::Arc;
use std::time::Duration;

use strix_core::BatchGeometry;
use strix_runtime::session::ProgramSession;
use strix_runtime::{Runtime, RuntimeConfig, RuntimeReport, TfheExecutor};
use strix_tfhe::lwe::LweCiphertext;
use strix_tfhe::prelude::*;
use strix_workloads::gates::{equality_program, ripple_carry_adder_program};

const BITS: usize = 4;
const CLIENT_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn encrypt_bits(key: &mut ClientKey, value: u64) -> Vec<LweCiphertext> {
    (0..BITS).map(|i| key.encrypt_bool((value >> i) & 1 == 1).into_lwe()).collect()
}

fn run_mix(runtime: &Runtime, key: &mut ClientKey, a: u64, b: u64) {
    let mut handle = runtime.client();
    for program in [ripple_carry_adder_program(BITS), equality_program(BITS)] {
        let mut inputs = encrypt_bits(key, a);
        inputs.extend(encrypt_bits(key, b));
        let session = ProgramSession::new(&program, inputs).expect("input arity");
        session.run(&mut handle).expect("program completes");
    }
}

fn sweep(clients: usize, client_key: &ClientKey, server_key: &Arc<ServerKey>) -> RuntimeReport {
    let runtime = Runtime::start(
        RuntimeConfig::new(BatchGeometry::explicit(2, 8))
            .with_max_delay(Duration::from_millis(10))
            .with_workers(1),
        TfheExecutor::new(Arc::clone(server_key)),
    );
    std::thread::scope(|scope| {
        for c in 0..clients as u64 {
            let mut key = client_key.clone();
            let runtime = &runtime;
            scope.spawn(move || run_mix(runtime, &mut key, (c + 5) % 16, (3 * c + 1) % 16));
        }
    });
    runtime.shutdown()
}

fn main() {
    let params = TfheParameters::testing_fast();
    let (client_key, server_key) = generate_keys(&params, 0x5e5510);
    let server_key = Arc::new(server_key);

    println!("## Session dataflow: concurrent circuit clients vs epoch occupancy");
    println!();
    println!(
        "per-client mix: {BITS}-bit adder + {BITS}-bit equality \
         ({} fused-gate requests), epoch capacity 16",
        ripple_carry_adder_program(BITS).request_count() + equality_program(BITS).request_count()
    );
    println!();
    println!("| clients | requests | epochs | mean occupancy | PBS/s | p99 ms |");
    println!("|---------|----------|--------|----------------|-------|--------|");
    let mut baseline = None;
    for clients in CLIENT_SWEEP {
        let report = sweep(clients, &client_key, &server_key);
        assert_eq!(report.requests_failed, 0, "bench run must not fail requests");
        let occ = report.mean_batch_occupancy;
        let baseline_occ = *baseline.get_or_insert(occ);
        println!(
            "| {clients} | {} | {} | {:.1}% ({:.2}x) | {:.0} | {:.2} |",
            report.requests_completed,
            report.epochs,
            occ * 100.0,
            occ / baseline_occ,
            report.achieved_pbs_per_s,
            report.p99_latency_us as f64 / 1e3,
        );
    }
    println!();
    println!(
        "(testing_fast parameters; the occupancy ratio, not the absolute \
         PBS/s, is the figure of merit on shared CI hardware)"
    );
}
