//! Figure 8 — functional-unit timing for the first two blind-rotation
//! iterations, three LWE ciphertexts per core, parameter set I.
//!
//! Renders the timing diagram (per-LWE bars drawn with glyphs 1/2/3 in
//! place of the paper's colours) and prints the per-row occupancies the
//! paper cites: decomposer/FFT/VMA/IFFT/accumulator near 100%, rotator
//! 50%, local scratchpad ≈90%, HBM ≈60%.

use strix_bench::{banner, markdown_table};
use strix_core::{StrixConfig, StrixSimulator};
use strix_tfhe::TfheParameters;

fn main() {
    println!("{}", banner("Figure 8: pipeline timing, set I, 3 LWEs/core"));

    let config = StrixConfig::paper_default().with_core_batch(3);
    let sim = StrixSimulator::new(config, TfheParameters::set_i()).unwrap();

    // The figure itself: two iterations.
    let diagram = sim.trace(2);
    println!("{}", diagram.render_ascii(96));

    // Occupancies measured over a longer steady-state window.
    let steady = sim.trace(16);
    let paper = [
        ("Rotator", "≈50%"),
        ("Decomp.", "≈100%"),
        ("FFT", "≈100%"),
        ("VMA", "≈100%"),
        ("IFFT", "≈100%"),
        ("Accum.", "≈100%"),
        ("Loc. Scrtpd.", "≈90%"),
        ("HBM", "≈60%"),
    ];
    let rows: Vec<Vec<String>> = paper
        .iter()
        .map(|(row, claim)| {
            let occ = steady.occupancy_of(row).unwrap();
            vec![row.to_string(), format!("{:.0}%", occ * 100.0), claim.to_string()]
        })
        .collect();
    println!("{}", markdown_table(&["row", "occupancy (model)", "paper"], &rows));

    let rot = steady.occupancy_of("Rotator").unwrap();
    assert!((0.40..0.60).contains(&rot), "rotator occupancy {rot}");
    let fft = steady.occupancy_of("FFT").unwrap();
    assert!(fft > 0.9, "fft occupancy {fft}");
    let hbm = steady.occupancy_of("HBM").unwrap();
    assert!((0.5..0.8).contains(&hbm), "hbm occupancy {hbm}");
    println!("shape checks passed: Fig. 8 utilisation profile reproduced");
}
