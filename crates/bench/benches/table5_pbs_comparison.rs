//! Table V — PBS latency and throughput across platforms and parameter
//! sets.
//!
//! Three kinds of rows: (a) published points carried from the paper
//! (Concrete/Xeon, NuFHE, YKP, XHEC, Matcha, Strix-as-published),
//! (b) our CPU baseline *measured on this host* with `strix-tfhe`, and
//! (c) our Strix *simulated* with `strix-core`. The simulated Strix
//! must land within 10% of the paper's throughput on every set.

use strix_baselines::cpu;
use strix_baselines::published::{self, PUBLISHED_TABLE_V};
use strix_bench::{banner, markdown_table, opt_cell};
use strix_core::{StrixConfig, StrixSimulator};
use strix_tfhe::ParameterSet;

fn main() {
    println!("{}", banner("Table V: PBS latency and throughput comparison"));

    let mut rows = Vec::new();
    for point in PUBLISHED_TABLE_V {
        rows.push(vec![
            format!("{} ({}) [paper]", point.platform, point.hardware),
            point.set.label().to_string(),
            opt_cell(point.latency_ms, 2),
            opt_cell(point.throughput_pbs_s, 0),
        ]);
    }

    // Our measured CPU rows (this host, single-threaded strix-tfhe).
    for set in ParameterSet::ALL {
        let params = set.parameters();
        let iterations = if params.polynomial_size >= 16384 { 1 } else { 2 };
        let m = cpu::measure_pbs_benchmark_key(&params, iterations);
        rows.push(vec![
            "strix-tfhe (CPU) [measured]".into(),
            set.label().to_string(),
            format!("{:.2}", (m.pbs_s + m.keyswitch_s) * 1e3),
            format!("{:.0}", m.throughput_pbs_s),
        ]);
    }

    // Our simulated Strix rows.
    let mut max_err: f64 = 0.0;
    for set in ParameterSet::ALL {
        let sim = StrixSimulator::new(StrixConfig::paper_default(), set.parameters())
            .expect("paper config is valid");
        let r = sim.pbs_report(1 << 14);
        rows.push(vec![
            "Strix (ASIC) [simulated]".into(),
            set.label().to_string(),
            format!("{:.2}", r.latency_s * 1e3),
            format!("{:.0}", r.throughput_pbs_per_s),
        ]);
        let paper = published::lookup("Strix", set).unwrap().throughput_pbs_s.unwrap();
        max_err = max_err.max((r.throughput_pbs_per_s / paper - 1.0).abs());
    }

    println!(
        "{}",
        markdown_table(&["platform", "set", "latency (ms)", "throughput (PBS/s)"], &rows)
    );
    println!(
        "simulated Strix throughput within {:.1}% of paper across all four sets",
        max_err * 100.0
    );
    assert!(max_err < 0.10, "simulated throughput drifted from the paper");

    // Headline ratios recomputed from the rows.
    let (vs_cpu, vs_gpu, vs_matcha) = published::headline_speedups();
    println!(
        "headline (from published rows): {vs_cpu:.0}x vs CPU, {vs_gpu:.0}x vs GPU, \
         {vs_matcha:.1}x vs Matcha (paper: 1,067x / 37x / 7.4x)"
    );
}
