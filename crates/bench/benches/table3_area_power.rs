//! Table III — area and power breakdown of Strix (8 HSCs, 28 nm).
//!
//! Our model anchors each component to the paper's synthesis result and
//! scales with the configuration; at the default design point it must
//! reproduce the published numbers within ~2%.

use strix_bench::{banner, markdown_table};
use strix_core::area::AreaModel;
use strix_core::StrixConfig;

/// Paper Table III rows: (component prefix, area mm², power W).
const PAPER: &[(&str, f64, f64)] = &[
    ("Local scratchpad", 0.92, 0.47),
    ("Rotator", 0.02, 0.01),
    ("Decomposer", 0.28, 0.02),
    ("I/FFTU", 7.23, 5.49),
    ("VMA", 0.63, 0.10),
    ("Accumulator", 0.32, 0.13),
];

fn main() {
    println!("{}", banner("Table III: Strix area and power breakdown"));
    let model = AreaModel::new(&StrixConfig::paper_default());

    let mut rows = Vec::new();
    for c in model.per_core_components() {
        let paper = PAPER.iter().find(|(name, _, _)| c.name.starts_with(name));
        rows.push(vec![
            c.name.clone(),
            format!("{:.2}", c.area_mm2),
            format!("{:.2}", c.power_w),
            paper.map_or("–".into(), |(_, a, _)| format!("{a:.2}")),
            paper.map_or("–".into(), |(_, _, p)| format!("{p:.2}")),
        ]);
    }
    rows.push(vec![
        "1 core".into(),
        format!("{:.2}", model.core_area_mm2()),
        format!("{:.2}", model.core_power_w()),
        "9.38".into(),
        "6.21".into(),
    ]);
    rows.push(vec![
        "8 cores".into(),
        format!("{:.2}", model.core_area_mm2() * 8.0),
        format!("{:.2}", model.core_power_w() * 8.0),
        "75.03".into(),
        "49.67".into(),
    ]);
    for c in model.uncore_components() {
        rows.push(vec![
            c.name.clone(),
            format!("{:.2}", c.area_mm2),
            format!("{:.2}", c.power_w),
            "–".into(),
            "–".into(),
        ]);
    }
    rows.push(vec![
        "Total".into(),
        format!("{:.2}", model.total_area_mm2()),
        format!("{:.2}", model.total_power_w()),
        "141.37".into(),
        "77.14".into(),
    ]);
    println!(
        "{}",
        markdown_table(
            &["component", "area mm² (model)", "power W (model)", "area (paper)", "power (paper)"],
            &rows
        )
    );

    let area_err = (model.total_area_mm2() - 141.37).abs() / 141.37;
    let power_err = (model.total_power_w() - 77.14).abs() / 77.14;
    assert!(area_err < 0.02, "total area off by {:.1}%", area_err * 100.0);
    assert!(power_err < 0.02, "total power off by {:.1}%", power_err * 100.0);
    println!(
        "totals within 2% of paper (area err {:.2}%, power err {:.2}%)",
        area_err * 100.0,
        power_err * 100.0
    );
}
