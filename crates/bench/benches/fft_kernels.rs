//! Criterion micro-benchmark pitting the bit-reversed-spectrum
//! negacyclic kernel against the seed radix-2 natural-order path.
//!
//! The seed path is reconstructed here, faithfully, from the pieces
//! that still ship: the natural-order [`FftPlan`] (kept as the
//! correctness oracle) plus the explicit fold/twist, untwist and
//! normalisation passes the seed `NegacyclicFft` performed around it.
//! The production path is today's [`NegacyclicFft`] — DIF/DIT kernel,
//! no permutation pass, fused twist and untwist/normalise stages.
//!
//! Acceptance bar (ISSUE 4): the forward+inverse pair at N=1024 must
//! be ≥ 1.5× faster on the new kernel than on the seed kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use strix_fft::{Complex64, FftPlan, NegacyclicFft, SoaSpectrum, StrixFftBackend};

/// The seed negacyclic transform: explicit twist tables around the
/// natural-order radix-2 `FftPlan`, exactly as the seed
/// `NegacyclicFft` was implemented.
struct SeedNegacyclic {
    plan: FftPlan,
    twist: Vec<Complex64>,
    untwist: Vec<Complex64>,
    half: usize,
}

impl SeedNegacyclic {
    fn new(poly_size: usize) -> Self {
        let half = poly_size / 2;
        let mut twist = Vec::with_capacity(half);
        let mut untwist = Vec::with_capacity(half);
        for j in 0..half {
            let theta = std::f64::consts::PI * j as f64 / poly_size as f64;
            twist.push(Complex64::cis(theta));
            untwist.push(Complex64::cis(-theta));
        }
        Self { plan: FftPlan::new(half).unwrap(), twist, untwist, half }
    }

    fn forward_i64(&self, poly: &[i64], out: &mut [Complex64]) {
        for j in 0..self.half {
            let folded = Complex64::new(poly[j] as f64, poly[j + self.half] as f64);
            out[j] = folded * self.twist[j];
        }
        self.plan.forward(out).unwrap();
    }

    fn backward_f64(&self, spectrum: &mut [Complex64], out: &mut [f64]) {
        self.plan.inverse(spectrum).unwrap();
        for j in 0..self.half {
            let z = spectrum[j] * self.untwist[j];
            out[j] = z.re;
            out[j + self.half] = z.im;
        }
    }
}

fn sample_poly(n: usize) -> Vec<i64> {
    (0..n as i64).map(|i| (i * 31 % 1024) - 512).collect()
}

fn bench_transform_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_kernels");
    for n in [1024usize, 2048] {
        let poly = sample_poly(n);
        let seed = SeedNegacyclic::new(n);
        let new = NegacyclicFft::new(n).unwrap();
        group.throughput(Throughput::Elements(n as u64));

        group.bench_with_input(BenchmarkId::new("seed_radix2_pair", n), &n, |b, _| {
            let mut spec = vec![Complex64::ZERO; n / 2];
            let mut time = vec![0.0f64; n];
            b.iter(|| {
                seed.forward_i64(&poly, &mut spec);
                seed.backward_f64(&mut spec, &mut time);
                time[0]
            })
        });

        group.bench_with_input(BenchmarkId::new("bitrev_fused_pair", n), &n, |b, _| {
            let mut spec = vec![Complex64::ZERO; n / 2];
            let mut time = vec![0.0f64; n];
            b.iter(|| {
                new.forward_i64(&poly, &mut spec).unwrap();
                new.backward_f64(&mut spec, &mut time).unwrap();
                time[0]
            })
        });

        group.bench_with_input(BenchmarkId::new("seed_radix2_forward", n), &n, |b, _| {
            let mut spec = vec![Complex64::ZERO; n / 2];
            b.iter(|| seed.forward_i64(&poly, &mut spec))
        });

        group.bench_with_input(BenchmarkId::new("bitrev_fused_forward", n), &n, |b, _| {
            let mut spec = vec![Complex64::ZERO; n / 2];
            b.iter(|| new.forward_i64(&poly, &mut spec).unwrap())
        });
    }
    group.finish();
}

/// Per-backend smoke over the batched SoA entry points — one bench per
/// *available* backend (unavailable tiers are skipped, so the group
/// degrades gracefully on portable-only hardware). The ISSUE 9
/// acceptance bar reads off this group: `forward_many` at N=1024/2048,
/// best backend ≥ 1.3× over portable.
fn bench_backend_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_backends");
    // One CMUX external product's worth of transforms per call, so the
    // stage-across-batch schedule is exercised like the hot path.
    let batch = 8usize;
    for n in [1024usize, 2048] {
        let polys: Vec<i64> = (0..(batch * n) as i64).map(|i| (i * 31 % 1024) - 512).collect();
        group.throughput(Throughput::Elements((batch * n) as u64));
        for backend in [StrixFftBackend::Portable, StrixFftBackend::Avx2, StrixFftBackend::Avx512] {
            if !backend.is_available() {
                continue;
            }
            let fft = NegacyclicFft::with_backend(n, backend).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("forward_many/{backend}"), n),
                &n,
                |b, _| {
                    let mut spec = SoaSpectrum::new(batch, n / 2);
                    b.iter(|| fft.forward_i64_many(&polys, &mut spec).unwrap())
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("backward_many/{backend}"), n),
                &n,
                |b, _| {
                    let mut spec = SoaSpectrum::new(batch, n / 2);
                    fft.forward_i64_many(&polys, &mut spec).unwrap();
                    let mut time = vec![0.0f64; batch * n];
                    let mut scratch = SoaSpectrum::new(batch, n / 2);
                    b.iter(|| {
                        scratch.copy_from(&spec);
                        fft.backward_f64_many(&mut scratch, &mut time).unwrap();
                        time[0]
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("vma_soa/{backend}"), n),
                &n,
                |b, _| {
                    let mut acc = SoaSpectrum::new(batch, n / 2);
                    let mut a = SoaSpectrum::new(batch, n / 2);
                    fft.forward_i64_many(&polys, &mut a).unwrap();
                    let key_re = vec![0.5f64; n / 2];
                    let key_im = vec![-0.25f64; n / 2];
                    b.iter(|| {
                        for t in 0..batch {
                            let (ar, ai) = a.transform(t);
                            // Split borrows: accumulate into acc's planes.
                            let (sr, si) = acc.transform_mut(t);
                            fft.pointwise_mul_add_soa(sr, si, ar, ai, &key_re, &key_im);
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_transform_pair, bench_backend_matrix);
criterion_main!(benches);
