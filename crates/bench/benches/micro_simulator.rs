//! Criterion micro-benchmarks of the accelerator model itself: report
//! generation, workload-graph execution and trace synthesis are all
//! analytic and must stay effectively free, so design-space sweeps can
//! evaluate thousands of configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use strix_core::{StrixConfig, StrixSimulator};
use strix_tfhe::TfheParameters;
use strix_workloads::DeepNn;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");

    group.bench_function("construct_set_i", |b| {
        b.iter(|| {
            StrixSimulator::new(StrixConfig::paper_default(), TfheParameters::set_i()).unwrap()
        })
    });

    let sim = StrixSimulator::new(StrixConfig::paper_default(), TfheParameters::set_i()).unwrap();
    group.bench_function("pbs_report_16k", |b| b.iter(|| sim.pbs_report(1 << 14)));

    let nn = DeepNn::new(100, 1024);
    let nn_sim = StrixSimulator::new(StrixConfig::paper_default(), nn.params()).unwrap();
    let workload = nn.workload();
    group.bench_function("run_graph_nn100", |b| b.iter(|| nn_sim.run_graph(&workload)));

    let trace_sim = StrixSimulator::new(
        StrixConfig::paper_default().with_core_batch(3),
        TfheParameters::set_i(),
    )
    .unwrap();
    group.bench_function("trace_two_iterations", |b| b.iter(|| trace_sim.trace(2)));

    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
