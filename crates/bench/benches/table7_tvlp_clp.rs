//! Table VII — TvLP vs CLP trade-off at constant product (set IV,
//! one 300 GB/s HBM2e stack).
//!
//! Paper rows: (TvLP, CLP, throughput, latency ms, required GB/s) =
//! (16,2,2368,7.2,200) (8,4,2368,3.8,257) (4,8,2364,3.8,371)
//! (2,16,1240,3.6,599) (1,32,620,3.6,1053).

use strix_bench::{banner, markdown_table};
use strix_core::{StrixConfig, StrixSimulator};
use strix_tfhe::TfheParameters;

const PAPER_ROWS: [(usize, usize, f64, f64, f64); 5] = [
    (16, 2, 2_368.0, 7.2, 200.0),
    (8, 4, 2_368.0, 3.8, 257.0),
    (4, 8, 2_364.0, 3.8, 371.0),
    (2, 16, 1_240.0, 3.6, 599.0),
    (1, 32, 620.0, 3.6, 1_053.0),
];

fn main() {
    println!("{}", banner("Table VII: TvLP and CLP effects (set IV)"));

    let mut rows = Vec::new();
    let mut throughputs = Vec::new();
    for (tvlp, clp, p_thr, p_lat, p_bw) in PAPER_ROWS {
        let cfg = StrixConfig::paper_default().with_tvlp_clp(tvlp, clp);
        let sim = StrixSimulator::new(cfg, TfheParameters::set_iv()).unwrap();
        let r = sim.pbs_report(1 << 12);
        throughputs.push(r.throughput_pbs_per_s);
        rows.push(vec![
            tvlp.to_string(),
            clp.to_string(),
            format!("{:.0}", r.throughput_pbs_per_s),
            format!("{p_thr:.0}"),
            format!("{:.1}", r.latency_s * 1e3),
            format!("{p_lat:.1}"),
            format!("{:.0}", r.required_bandwidth_gbps),
            format!("{p_bw:.0}"),
            if r.memory_bound { "memory" } else { "compute" }.into(),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "TvLP",
                "CLP",
                "thr (model)",
                "thr (paper)",
                "lat ms (model)",
                "lat ms (paper)",
                "BW (model)",
                "BW (paper)",
                "bound"
            ],
            &rows
        )
    );

    // Shape assertions: flat throughput for CLP ≤ 8, ~halving at 16,
    // ~quartering at 32; required bandwidth strictly increasing.
    assert!((throughputs[0] - throughputs[2]).abs() / throughputs[0] < 0.02);
    let half = throughputs[3] / throughputs[1];
    assert!((0.4..0.65).contains(&half), "CLP=16 factor {half}");
    let quarter = throughputs[4] / throughputs[1];
    assert!((0.2..0.35).contains(&quarter), "CLP=32 factor {quarter}");
    println!("shape checks passed: compute-bound plateau then bandwidth-limited decay");
}
