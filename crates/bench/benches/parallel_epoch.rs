//! Parallel-epoch PBS scaling: one epoch of key-major batched
//! bootstraps sharded across 1/2/4/8 scoped threads via
//! `BootstrapKey::bootstrap_batch_parallel`, reporting achieved PBS/s
//! per thread count and the speedup over the sequential path.
//!
//! Every shard shares the one bootstrapping key and runs on its own
//! allocation-free `PbsScratch`, so the measured scaling is the
//! software ceiling of the paper's two-level batching: core-level
//! batching inside each shard, device-level parallelism across shards.
//!
//! ```sh
//! cargo bench -p strix-bench --bench parallel_epoch
//! ```

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use strix_bench::{banner, markdown_table};
use strix_tfhe::bootstrap::{BootstrapKey, Lut, PbsJob};
use strix_tfhe::lwe::LweCiphertext;
use strix_tfhe::prelude::*;
use strix_tfhe::rng::NoiseSampler;
use strix_tfhe::torus::encode_fraction;

/// Jobs per epoch — the paper-default core batch (32).
const EPOCH: usize = 32;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct EpochFixture {
    bsk: BootstrapKey,
    cts: Vec<LweCiphertext>,
    lut: Lut,
}

impl EpochFixture {
    /// Timing-equivalent fixture: a benchmark key (same arithmetic
    /// shape as a real one) and uniformly random ciphertexts, so every
    /// CMUX iteration does full rotate/decompose/FFT/VMA work.
    fn new(params: &TfheParameters) -> Self {
        let bsk = BootstrapKey::generate_for_benchmark(params);
        let mut rng = NoiseSampler::from_seed(0x5712);
        let cts = (0..EPOCH)
            .map(|_| {
                let mut raw = vec![0u64; params.lwe_dimension + 1];
                rng.fill_uniform(&mut raw);
                LweCiphertext::from_raw(raw)
            })
            .collect();
        let lut = Lut::sign(params.polynomial_size, encode_fraction(1, 3));
        Self { bsk, cts, lut }
    }

    fn jobs(&self) -> Vec<PbsJob<'_>> {
        self.cts.iter().map(|ct| PbsJob { ct, lut: &self.lut }).collect()
    }
}

fn parallel_epoch(c: &mut Criterion) {
    println!("{}", banner("Parallel epoch: PBS/s vs intra-epoch threads"));
    let params = TfheParameters::testing_fast();
    let fixture = EpochFixture::new(&params);
    let jobs = fixture.jobs();
    println!(
        "epoch of {} PBS at {} (n={}, N={}, l={}), host parallelism {}",
        EPOCH,
        params.name,
        params.lwe_dimension,
        params.polynomial_size,
        params.pbs_level,
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );

    let mut group = c.benchmark_group("parallel_epoch");
    group.throughput(Throughput::Elements(EPOCH as u64));
    for threads in THREAD_COUNTS {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| black_box(fixture.bsk.bootstrap_batch_parallel(&jobs, t).unwrap()));
        });
    }
    group.finish();

    // Scaling table: a fixed-repetition measurement per thread count so
    // the speedup column compares like against like.
    let reps = 3;
    let measure = |threads: usize| -> f64 {
        let t0 = Instant::now();
        for _ in 0..reps {
            black_box(fixture.bsk.bootstrap_batch_parallel(&jobs, threads).unwrap());
        }
        (reps * EPOCH) as f64 / t0.elapsed().as_secs_f64()
    };
    // Warm-up, then baseline.
    let _ = measure(1);
    let base = measure(1);
    let rows: Vec<Vec<String>> = THREAD_COUNTS
        .iter()
        .map(|&threads| {
            let pbs_per_s = if threads == 1 { base } else { measure(threads) };
            vec![
                threads.to_string(),
                format!("{pbs_per_s:.1}"),
                format!("{:.2}x", pbs_per_s / base),
            ]
        })
        .collect();
    println!();
    println!("{}", markdown_table(&["threads", "PBS/s", "speedup vs 1 thread"], &rows));
}

criterion_group!(benches, parallel_epoch);
criterion_main!(benches);
